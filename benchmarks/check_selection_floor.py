"""CI guard: fail when batched selection ranking regresses by >3x.

Times a 1000-candidate ``LatencySelection.rank`` over a warm substrate
(best of N runs — the latency matrix is prebuilt, so this isolates the
selection engine: dedup, row gather, stable argsort) and compares it
against the loose floor recorded in ``selection_floor.json``.  The 3x
headroom means only a real complexity regression trips it — normal
machine-to-machine noise does not.

Usage:  PYTHONPATH=src python benchmarks/check_selection_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.core.selection import LatencySelection
from repro.underlay import Underlay, UnderlayConfig

HERE = pathlib.Path(__file__).resolve().parent
REGRESSION_FACTOR = 3.0
REPEATS = 7


def main() -> int:
    floor_ms = json.loads(
        (HERE / "selection_floor.json").read_text()
    )["latency_rank_1000_ms"]

    underlay = Underlay.generate(UnderlayConfig(n_hosts=1100, seed=9)).precompute()
    sel = LatencySelection.from_underlay(underlay)
    ids = underlay.host_ids()
    cand = [int(c) for c in np.random.default_rng(0).choice(ids[1:], 1000, replace=False)]
    querier = ids[0]

    sel.rank(querier, cand)  # warm caches/imports
    best = min(
        _timed(lambda: sel.rank(querier, cand)) for _ in range(REPEATS)
    )
    best_ms = best * 1e3
    limit_ms = REGRESSION_FACTOR * floor_ms
    verdict = "OK" if best_ms <= limit_ms else "REGRESSION"
    print(
        f"LatencySelection.rank(1000 candidates, warm): {best_ms:.2f} ms "
        f"(floor {floor_ms:.2f} ms, limit {limit_ms:.2f} ms) -> {verdict}"
    )
    return 0 if best_ms <= limit_ms else 1


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    sys.exit(main())
