"""Ablation: proximity in a second structured-overlay family (Chord).

Plain Chord vs PRS (route selection) vs PNS (neighbor selection) vs both
— the eCAN/TSO technique space [30][31], and a cross-check of the DHT
proximity literature's classic finding that *neighbor* selection beats
*route* selection."""

from repro.overlay.chord import ChordConfig, ChordRing
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def test_ablation_chord_proximity(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=100, seed=12))

    def run_arm(cfg):
        sim = Simulation()
        bus, acct = underlay.message_bus(sim)
        ring = ChordRing(underlay, sim, bus, config=cfg, rng=2)
        ring.build()
        ids = underlay.host_ids()
        recs = [
            (ring.lookup(ids[i % len(ids)], f"key-{i}"), f"key-{i}")
            for i in range(300)
        ]
        sim.run()
        correct = sum(
            1 for rec, c in recs
            if rec.done and rec.owner == ring.correct_owner(c)
        )
        stats = ring.lookup_stats()
        stats["correct"] = correct / len(recs)
        stats["transit_bytes"] = acct.summary.transit_bytes
        return stats

    def run_all():
        return {
            "plain": run_arm(ChordConfig()),
            "PRS": run_arm(ChordConfig(proximity_routing=True)),
            "PNS": run_arm(ChordConfig(proximity_fingers=True)),
            "PNS+PRS": run_arm(
                ChordConfig(proximity_fingers=True, proximity_routing=True)
            ),
        }

    rows = once(run_all)
    print()
    for name, s in rows.items():
        print(f"  {name:8s} hops={s['mean_hops']:.1f} "
              f"lat={s['mean_latency_ms']:.0f}ms p95={s['p95_latency_ms']:.0f}ms "
              f"transit={s['transit_bytes']} ok={s['correct']:.2f}")
    # routing correctness is invariant under every proximity technique
    assert all(s["correct"] == 1.0 for s in rows.values())
    plain, pns, prs = rows["plain"], rows["PNS"], rows["PRS"]
    # PNS: materially lower latency and transit, no hop inflation
    assert pns["mean_latency_ms"] < 0.85 * plain["mean_latency_ms"]
    assert pns["transit_bytes"] < plain["transit_bytes"]
    assert pns["mean_hops"] <= plain["mean_hops"] + 0.5
    # the classic ordering: neighbor selection beats route selection
    assert pns["mean_latency_ms"] < prs["mean_latency_ms"]
    # PRS alone is roughly a wash in an access-latency-dominated underlay
    assert prs["mean_latency_ms"] < 1.15 * plain["mean_latency_ms"]
