"""Micro-benchmarks for the runner PR: event-loop hot path + fan-out.

Two claims are measured and recorded in ``BENCH_runner.json`` at the
repo root (the CI benchmark smoke uploads it):

1. **Event loop** — the plain-list heap entry + specialised (traced /
   untraced) run loops beat a seed-style reference engine (dataclass
   events, per-event tracer check) by >= 1.2x on raw dispatch
   throughput.
2. **Parallel sweeps** — ``run_arms`` with ``workers=4`` beats the
   serial path by >= 2x wall-clock on the 4-seed Figure 6 robustness
   sweep.  *This assertion is gated on the machine actually having >= 4
   usable cores* (``os.sched_getaffinity``): forked workers cannot beat
   serial on a single-core container, and pretending otherwise would
   just bake noise into CI.  The honest measured numbers (and the CPU
   count they were measured on) are always recorded in the artifact.

The ``benchmark``-fixture tests alongside give pytest-benchmark
trendlines for the same paths.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import heapq
import itertools

import numpy as np

from repro.experiments import run_fig6
from repro.experiments.common import repeat_over_seeds
from repro.runner import run_arms
from repro.sim import Simulation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

N_EVENTS = 30_000
SWEEP_SEEDS = [3, 17, 29, 41]
SWEEP_HOSTS = 150


# -- seed-style reference engine ---------------------------------------------
# The pre-PR implementation, kept verbatim in spirit: a dataclass per
# event (order=True on (time, seq)) and a single run loop that checks
# the tracer on every iteration.  Retained here so the recorded speedup
# always compares the same baseline, whatever the live engine becomes.


@dataclass(order=True)
class _RefEvent:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class _RefSimulation:
    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_RefEvent] = []
        self._seq = itertools.count()
        self._tracer: Any = None
        self.events_processed = 0

    def schedule(self, delay: float, callback, *args) -> _RefEvent:
        ev = _RefEvent(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    def run(self, until: float | None = None) -> None:
        heap = self._heap
        while heap:
            ev = heap[0]
            if until is not None and ev.time > until:
                break
            heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fired = True
            if self._tracer is not None:  # checked per event, every event
                self._tracer.emit("sim", "fire", time=ev.time, seq=ev.seq)
            self.events_processed += 1
            ev.callback(*ev.args)
        if until is not None and (not heap or heap[0].time > until):
            self._now = max(self._now, until)


def _event_workload(sim_cls) -> int:
    """Schedule-then-drain churn: every event re-schedules a successor,
    which is the shape the overlay simulations produce."""
    sim = sim_cls()
    count = [0]

    def tick(depth: int) -> None:
        count[0] += 1
        if depth:
            sim.schedule(1.0, tick, depth - 1)

    for i in range(N_EVENTS // 10):
        sim.schedule(float(i % 97), tick, 9)
    sim.run()
    return count[0]


def _best_of(fn, repeats: int = 5) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fig6_sweep(workers: int):
    return repeat_over_seeds(
        lambda seed: run_fig6(n_hosts=SWEEP_HOSTS, seed=seed),
        seeds=SWEEP_SEEDS,
        key_column="arm",
        value_columns=["intra_as_edge_fraction", "as_modularity"],
        workers=workers,
    )


def test_event_loop_reference_equivalence():
    """Benchmark prerequisite: both engines dispatch the same events."""
    assert _event_workload(Simulation) == _event_workload(_RefSimulation)


def test_schedule_many_batch_insert(benchmark):
    """Batch insertion of a broadcast-sized fan-out."""
    def run():
        sim = Simulation()
        sim.schedule_many((float(i % 50), _noop, ()) for i in range(5_000))
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 5_000


def _noop() -> None:
    pass


def test_runner_serial_overhead(benchmark):
    """run_arms(workers=1) is a thin wrapper over the plain loop."""
    arms = list(range(100))
    out = benchmark(run_arms, _square, arms, workers=1)
    assert out == [a * a for a in arms]


def _square(x: int) -> int:
    return x * x


def test_runner_artifact():
    """Record the PR's performance claims in BENCH_runner.json."""
    cpus = len(os.sched_getaffinity(0))

    # 1. event loop vs the seed-style reference engine
    ref_s = _best_of(lambda: _event_workload(_RefSimulation))
    fast_s = _best_of(lambda: _event_workload(Simulation))
    loop_speedup = ref_s / fast_s

    # 2. the 4-seed fig6 robustness sweep, serial vs 4 workers
    serial_s = _best_of(lambda: _fig6_sweep(1), repeats=1)
    parallel_s = _best_of(lambda: _fig6_sweep(4), repeats=1)
    sweep_speedup = serial_s / parallel_s

    # determinism rider: the timed runs must agree row-for-row
    assert _fig6_sweep(1).rows == _fig6_sweep(4).rows

    artifact = {
        "event_loop": {
            "events": N_EVENTS,
            "reference_ms": round(ref_s * 1e3, 3),
            "fast_ms": round(fast_s * 1e3, 3),
            "speedup": round(loop_speedup, 2),
        },
        "fig6_sweep_4seeds": {
            "n_hosts": SWEEP_HOSTS,
            "seeds": SWEEP_SEEDS,
            "serial_s": round(serial_s, 3),
            "workers4_s": round(parallel_s, 3),
            "speedup": round(sweep_speedup, 2),
            "cpus": cpus,
        },
    }
    (REPO_ROOT / "BENCH_runner.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    assert loop_speedup >= 1.2, artifact
    if cpus >= 4:
        # the headline parallel claim, only meaningful with real cores
        assert sweep_speedup >= 2.0, artifact
    # below 4 cores the parallel timing is pure oversubscription noise
    # (4 forked workers time-slicing 1-2 cores): record, don't assert —
    # the determinism rider above still ran the parallel path for real
