"""TAB2 bench: the measured impact matrix vs the paper's Table 2."""

import numpy as np

from repro.experiments import print_table, run_table2
from repro.metrics import PAPER_TABLE2


def test_table2_impact_matrix(once):
    result = once(run_table2, n_hosts=200, seed=31)
    print_table(result)
    cells = {(r["parameter"], r["info"]): r for r in result.rows}

    # the ISP-location column — the survey's flagship case — must match
    # the paper on every row
    for param in PAPER_TABLE2:
        cell = cells[(param, "isp_location")]
        assert cell["match"], f"isp_location/{param}: {cell}"

    # signature cells of the other columns
    assert cells[("delay", "latency")]["measured"] == "++"
    assert cells[("download_time", "peer_resources")]["measured"] == "++"
    assert cells[("new_applications", "geolocation")]["measured"] == "++"
    assert cells[("isp_oam", "peer_resources")]["measured"] == "o"

    # aggregate fidelity: most cells agree, and large disagreements are rare
    match_rate = np.mean([r["match"] for r in result.rows])
    within_one = np.mean([r["within_one"] for r in result.rows])
    assert match_rate >= 0.5
    assert within_one >= 0.7
