"""FIG4 bench: ICS worked examples (exact) + the embedding comparison."""

import pytest

from repro.experiments import print_table, run_fig4_embedding, run_fig4_examples


def test_fig4a_ics_paper_examples(once):
    result = once(run_fig4_examples)
    print_table(result)
    for row in result.rows:
        # paper prints truncated values; all must match at print precision
        assert row["measured"] == pytest.approx(row["paper"], abs=1e-2), row


def test_fig4c_dimension_sweep(once):
    from repro.experiments import run_fig4_dimension_sweep

    result = once(run_fig4_dimension_sweep)
    print_table(result)
    errs = result.column("median_rel_err")
    dims = result.column("dim")
    cv = result.column("cumulative_variation")
    # error shrinks (weakly) with dimension and plateaus at the top end
    assert errs[-1] <= errs[0]
    assert errs[-1] < 0.5
    assert abs(errs[-1] - errs[-2]) < 0.05  # the plateau
    # cumulative variation is monotone and reaches 1 at full dimension
    assert cv == sorted(cv)
    assert cv[-1] == 1.0
    assert dims[-1] > dims[0]


def test_fig4b_embedding_comparison(once):
    result = once(run_fig4_embedding, n_hosts=60, n_beacons=12, seed=33)
    print_table(result)
    rows = {r["system"]: r for r in result.rows}
    # all three predictors produce usable estimates
    for r in result.rows:
        assert r["median_rel_err"] < 0.8
        assert r["stretch"] >= 1.0
    # Vivaldi (continuous refinement) beats the one-shot landmark methods,
    # at the cost of many more probes
    assert rows["Vivaldi(3D+h)"]["median_rel_err"] < rows["ICS"]["median_rel_err"]
    assert (
        rows["Vivaldi(3D+h)"]["probes_per_host"]
        > rows["ICS"]["probes_per_host"]
    )
