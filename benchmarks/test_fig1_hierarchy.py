"""FIG1 bench: regenerate the Internet-hierarchy structure table."""

from repro.experiments import print_table, run_fig1


def test_fig1_hierarchy(once):
    result = once(run_fig1)
    print_table(result)
    for row in result.rows:
        assert row["money_flows_up"]
        assert row["peering_same_tier"]
        assert row["all_have_providers"]
        # AS-path lengths in the realistic 2-5 hop band
        assert 1.5 <= row["mean_stub_hops"] <= 5.0
        assert row["max_stub_hops"] <= 7
