"""CI guard: fail when the struct-of-arrays peer state regresses by >3x.

Re-times the N = 10^4 liveness transition workload (slot-vector batch
writes + vectorised online scans over :class:`repro.core.peerstate.PeerState`)
and compares it against the loose floor recorded in ``scale_floor.json``
— the 3x headroom means only a real complexity regression trips it, not
machine-to-machine noise.  If a fresh ``BENCH_scale.json`` exists at the
repo root (written by ``benchmarks/test_microbench_scale.py``), its
recorded headline speedup over the object-based reference is validated
too.

Usage:  PYTHONPATH=src python benchmarks/check_scale_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.core.peerstate import OFFLINE, ONLINE, PeerState

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
REGRESSION_FACTOR = 3.0
HEADLINE_SPEEDUP = 3.0
REPEATS = 5
N = 10_000


def _transitions_per_sec() -> float:
    state = PeerState(initial_capacity=N)
    hosts = list(range(N))
    for h in hosts:
        state.admit(h, region=h % 64)
    block = N // 10
    cohorts = [
        state.slots_of(hosts[(r * block) % N : (r * block) % N + block])
        for r in range(50)
    ]

    def run() -> int:
        events = 0
        for cohort in cohorts:
            state.set_status_slots(cohort, ONLINE)
            state.online_count()
            state.set_status_slots(cohort, OFFLINE)
            events += 2 * len(cohort)
        return events

    run()  # warm caches/imports
    best = min(_timed(run) for _ in range(REPEATS))
    return (2 * block * len(cohorts)) / best


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def main() -> int:
    floor = json.loads((HERE / "scale_floor.json").read_text())[
        "soa_transitions_10k_events_per_sec"
    ]
    limit = floor / REGRESSION_FACTOR

    rate = _transitions_per_sec()
    verdict = "OK" if rate >= limit else "REGRESSION"
    print(
        f"PeerState liveness transitions (N={N}): {rate / 1e6:.1f} M events/s "
        f"(floor {floor / 1e6:.1f} M, limit {limit / 1e6:.1f} M) -> {verdict}"
    )
    failed = rate < limit

    bench = REPO_ROOT / "BENCH_scale.json"
    if bench.exists():
        headline = json.loads(bench.read_text())["headline"]
        speedup = headline["transitions_speedup_n10000"]
        ok = speedup >= HEADLINE_SPEEDUP
        print(
            f"BENCH_scale.json headline: {speedup:.2f}x over the object "
            f"reference at N=10^4 (required >= {HEADLINE_SPEEDUP:.0f}x) -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )
        failed = failed or not ok
    else:
        print("BENCH_scale.json not present - skipping headline validation")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
