"""CI guard: fail when the bus send fast path regresses by >3x.

Re-times the repeated-pair fan-out send workload (stream delay backend +
LRU pair memo + bound metric cells) and compares it against the loose
floor recorded in ``bus_floor.json`` — the 3x headroom means only a real
complexity regression trips it (a per-send RNG construction, label
validation back on the hot path, an O(n) lookup), not machine-to-machine
noise.  If a fresh ``BENCH_bus.json`` exists at the repo root (written
by ``benchmarks/test_microbench_bus.py``), its recorded headline speedup
over the seed per-pair-RNG reference is validated too.

Usage:  PYTHONPATH=src python benchmarks/check_bus_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.sim import MessageBus, Simulation
from repro.underlay import Underlay, UnderlayConfig

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
REGRESSION_FACTOR = 3.0
HEADLINE_SPEEDUP = 3.0
REPEATS = 5
N_HOSTS = 300
FAN_OUT = 64
ROUNDS = 60


def _sends_per_sec() -> float:
    underlay = Underlay.generate(
        UnderlayConfig(n_hosts=N_HOSTS, seed=23, delay_backend="stream")
    )
    ids = underlay.host_ids()
    sim = Simulation()
    bus = MessageBus(sim, underlay)
    for h in ids[: FAN_OUT + 1]:
        bus.register(h, lambda m: None)
    src, dsts = ids[0], ids[1 : FAN_OUT + 1]

    def run() -> float:
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            bus.send_many(src, dsts, "PING")
        elapsed = time.perf_counter() - t0
        sim.run()  # drain outside the timed region
        return elapsed

    run()  # warm the pair memo, bound cells, imports
    best = min(run() for _ in range(REPEATS))
    return (ROUNDS * FAN_OUT) / best


def main() -> int:
    floor = json.loads((HERE / "bus_floor.json").read_text())[
        "stream_memo_sends_per_sec"
    ]
    limit = floor / REGRESSION_FACTOR

    rate = _sends_per_sec()
    verdict = "OK" if rate >= limit else "REGRESSION"
    print(
        f"bus send fast path (stream+memo, fan-out {FAN_OUT}): "
        f"{rate / 1e3:.0f} k sends/s "
        f"(floor {floor / 1e3:.0f} k, limit {limit / 1e3:.0f} k) -> {verdict}"
    )
    failed = rate < limit

    bench = REPO_ROOT / "BENCH_bus.json"
    if bench.exists():
        headline = json.loads(bench.read_text())["headline"]
        speedup = headline["per_send_speedup"]
        ok = speedup >= HEADLINE_SPEEDUP
        print(
            f"BENCH_bus.json headline: {speedup:.2f}x over the seed "
            f"per-pair-RNG reference (required >= {HEADLINE_SPEEDUP:.0f}x) -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )
        failed = failed or not ok
    else:
        print("BENCH_bus.json not present - skipping headline validation")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
