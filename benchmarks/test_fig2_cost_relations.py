"""FIG2 bench: regenerate the transit-vs-peering cost curves."""

import numpy as np

from repro.experiments import print_table, run_fig2, run_locality_savings


def test_fig2_cost_relations(once):
    result = once(run_fig2)
    print_table(result)
    transit_unit = result.column("transit_per_mbps_usd")
    peering_unit = result.column("peering_per_mbps_usd")
    traffic = result.column("traffic_mbps")
    # paper shape: transit cost/Mbps ~ constant
    assert max(transit_unit) == min(transit_unit)
    # paper shape: peering cost/Mbps inversely proportional to traffic
    products = [u * t for u, t in zip(peering_unit, traffic)]
    assert np.allclose(products, products[0])
    # total transit cost proportional to traffic
    totals = result.column("transit_total_usd")
    assert np.allclose(
        [c / t for c, t in zip(totals, traffic)], totals[0] / traffic[0]
    )


def test_fig2b_locality_savings(once):
    result = once(run_locality_savings)
    print_table(result)
    bills = result.column("monthly_bill_usd")
    assert bills[0] > bills[-1]
    # full-locality bill is dominated by the flat peering cost
    assert bills[-1] < 0.3 * bills[0]
