"""Micro-benchmarks of the flow-level swarm data plane.

``test_flows_artifact`` runs the same single-torrent workload to full
completion on both data planes — the flow-level
:class:`~repro.overlay.bittorrent.FlowSwarmSimulation` and the
time-stepped :class:`~repro.overlay.bittorrent.SwarmSimulationReference`
— at N = 10^2 and 10^3 peers, and records wall-clock, peers/sec and the
per-size speedup in ``BENCH_flows.json`` at the repo root.  The headline
claim — the flow plane completes the 10^3-peer swarm >= 5x faster than
the reference — is asserted on every run.  Both planes run the identical
workload end to end (same underlay, torrent, tracker seeds); nothing is
extrapolated.

The allocator micro-benchmarks time one rate computation at realistic
epoch sizes: the closed-form single-link water-filling fast path (the
default access-bottlenecked configuration) and general progressive
filling over a CSR incidence (the capacitated-transit configuration).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.overlay.bittorrent import (
    FlowSwarmSimulation,
    SwarmSimulationReference,
    Torrent,
    Tracker,
)
from repro.sim.flows import max_min_rates, single_link_waterfill
from repro.underlay.network import Underlay, UnderlayConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SIZES = (100, 1_000)
HEADLINE_SPEEDUP = 5.0
N_PIECES = 16  # CI-sized torrent; the speedup grows with torrent size
SEED = 5


def _setup(n_hosts: int):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=SEED))
    ids = underlay.host_ids()
    seeds = sorted(
        ids, key=lambda h: -underlay.host(h).resources.bandwidth_up_kbps
    )[:5]
    leechers = [h for h in ids if h not in seeds]
    torrent = Torrent(0, n_pieces=N_PIECES, piece_size_bytes=262144)
    return underlay, torrent, seeds, leechers


def _run_plane(impl: str, n_hosts: int) -> dict:
    underlay, torrent, seeds, leechers = _setup(n_hosts)
    tracker = Tracker(underlay, rng=SEED)
    if impl == "flow":
        swarm = FlowSwarmSimulation(underlay, torrent, tracker, rng=SEED)
    else:
        swarm = SwarmSimulationReference(underlay, torrent, tracker, rng=SEED)
    swarm.populate(leechers, seeds)
    t0 = time.perf_counter()
    report = swarm.run(max_time_s=7200.0)
    wall = time.perf_counter() - t0
    assert report.completed == report.total_leechers
    return {
        "n_peers": n_hosts,
        "wall_s": round(wall, 3),
        "peers_per_sec": round(n_hosts / wall, 1),
        "completed": report.completed,
        "sim_duration_s": round(report.duration_s, 1),
        "median_download_s": round(report.median_download_time_s, 1),
    }


def _allocator_workload() -> dict:
    """One allocation at a realistic epoch size: 10^3 peers x 5 unchoke
    slots = 5x10^3 flows over 2x10^3 access links."""
    rng = np.random.default_rng(0)
    n_peers, n_flows = 1_000, 5_000
    down_caps = rng.uniform(1e5, 1e7, size=n_peers)
    up_caps = rng.uniform(1e5, 1e7, size=n_peers)
    link_of_flow = rng.integers(0, n_peers, size=n_flows)
    flow_cap = up_caps[rng.integers(0, n_peers, size=n_flows)] / 5.0

    t0 = time.perf_counter()
    for _ in range(20):
        single_link_waterfill(down_caps, link_of_flow, flow_cap)
    fast_ms = (time.perf_counter() - t0) / 20 * 1e3

    up_of_flow = rng.integers(0, n_peers, size=n_flows)
    indptr = np.arange(0, 2 * n_flows + 1, 2, dtype=np.int64)
    indices = np.empty(2 * n_flows, dtype=np.int64)
    indices[0::2] = up_of_flow
    indices[1::2] = n_peers + link_of_flow
    capacity = np.concatenate([up_caps, down_caps])
    t0 = time.perf_counter()
    for _ in range(5):
        max_min_rates(capacity, indptr, indices, flow_cap)
    general_ms = (time.perf_counter() - t0) / 5 * 1e3

    return {
        "n_flows": n_flows,
        "waterfill_ms": round(fast_ms, 3),
        "progressive_filling_ms": round(general_ms, 3),
        "fast_path_speedup": round(general_ms / fast_ms, 1),
    }


def test_waterfill_epoch(benchmark):
    rng = np.random.default_rng(0)
    down_caps = rng.uniform(1e5, 1e7, size=1_000)
    link_of_flow = rng.integers(0, 1_000, size=5_000)
    flow_cap = rng.uniform(1e4, 1e6, size=5_000)
    rates = benchmark(single_link_waterfill, down_caps, link_of_flow, flow_cap)
    assert np.all(rates <= flow_cap * (1 + 1e-9))


def test_flows_artifact():
    """Record full-completion wall clock for both data planes in
    BENCH_flows.json and hold the headline claim: >= 5x at N = 10^3."""
    artifact: dict = {
        "workload": {
            "n_pieces": N_PIECES,
            "piece_size_bytes": 262144,
            "n_seeds": 5,
            "note": "identical full-completion runs on both planes; "
            "no extrapolation",
        },
        "planes": {"flow": {}, "reference": {}},
    }
    for n in SIZES:
        for impl in ("flow", "reference"):
            artifact["planes"][impl][f"n_{n}"] = _run_plane(impl, n)

    speedups = {
        f"n_{n}": round(
            artifact["planes"]["reference"][f"n_{n}"]["wall_s"]
            / artifact["planes"]["flow"][f"n_{n}"]["wall_s"],
            2,
        )
        for n in SIZES
    }
    artifact["allocator"] = _allocator_workload()
    artifact["headline"] = {
        "speedup": speedups,
        "claim": "flow plane completes the 10^3-peer swarm >= 5x faster "
        "than the time-stepped reference",
    }
    (REPO_ROOT / "BENCH_flows.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    assert speedups["n_1000"] >= HEADLINE_SPEEDUP, artifact["headline"]
