"""CI guard: fail when the frontier-batched query plane regresses by >3x.

Re-times batched Gnutella flood expansion over a 1000-ultrapeer
directly-wired mesh (stream delay backend, bare bus) and compares it
against the loose floor recorded in ``query_floor.json`` — the 3x
headroom means only a real complexity regression trips it (per-message
simulator scheduling back in the kernel loop, a Message allocation per
hop, per-message metric updates), not machine-to-machine noise.  If a
fresh ``BENCH_query.json`` exists at the repo root (written by
``benchmarks/test_microbench_query.py``), its recorded headline speedup
over the per-message reference path is validated against the CI floor
of 3x too (the bench itself asserts the 5x headline).

Usage:  PYTHONPATH=src python benchmarks/check_query_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork
from repro.sim import MessageBus, Simulation
from repro.underlay import Underlay, UnderlayConfig

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
REGRESSION_FACTOR = 3.0
HEADLINE_SPEEDUP = 3.0  # CI floor; the bench itself asserts >= 5x
REPEATS = 3
N_HOSTS = 1000
DEGREE = 6
N_QUERIES = 6
N_KEYWORDS = 31


def _floods_per_sec() -> float:
    underlay = Underlay.generate(
        UnderlayConfig(n_hosts=N_HOSTS, seed=29, delay_backend="stream")
    )
    sim = Simulation()
    bus = MessageBus(sim, underlay)
    net = GnutellaNetwork(
        underlay, sim, bus,
        config=GnutellaConfig(query_ttl=5, max_up_neighbors=DEGREE),
        rng=29, query_backend="batch",
    )
    net.add_population(underlay.hosts, ultrapeer_fraction=1.0)
    rng = np.random.default_rng(29)
    for node in net.nodes.values():
        hid = node.host_id
        node.neighbors.add((hid + 1) % N_HOSTS)
        node.neighbors.add((hid - 1) % N_HOSTS)
        for peer in rng.integers(0, N_HOSTS, DEGREE):
            if peer != hid:
                node.neighbors.add(int(peer))
                net.nodes[int(peer)].neighbors.add(hid)
    for h in underlay.hosts:
        net.share_content(h.host_id, [h.host_id % N_KEYWORDS])

    def run(base: int) -> float:
        t0 = time.perf_counter()
        for i in range(N_QUERIES):
            net.search(
                (base + i * (N_HOSTS // N_QUERIES)) % N_HOSTS,
                (base + i) % N_KEYWORDS,
            )
        sim.run()
        return time.perf_counter() - t0

    run(0)  # warm: imports, delay memo, seen-filter columns
    best = min(run(1 + r) for r in range(REPEATS))
    return N_QUERIES / best


def main() -> int:
    floor = json.loads((HERE / "query_floor.json").read_text())[
        "batch_floods_per_sec"
    ]
    limit = floor / REGRESSION_FACTOR

    rate = _floods_per_sec()
    verdict = "OK" if rate >= limit else "REGRESSION"
    print(
        f"batched flood expansion ({N_HOSTS} UPs, ttl=5): "
        f"{rate:.1f} floods/s "
        f"(floor {floor:.1f}, limit {limit:.1f}) -> {verdict}"
    )
    failed = rate < limit

    bench = REPO_ROOT / "BENCH_query.json"
    if bench.exists():
        headline = json.loads(bench.read_text())["headline"]
        speedup = headline["flood_speedup"]
        ok = speedup >= HEADLINE_SPEEDUP
        print(
            f"BENCH_query.json headline: {speedup:.2f}x over the per-message "
            f"reference (CI floor >= {HEADLINE_SPEEDUP:.0f}x) -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )
        failed = failed or not ok
    else:
        print("BENCH_query.json not present - skipping headline validation")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
