"""Ablation: mobility staleness (§6 "Mobile Support").

Measures the decay of cached ISP-location under peer mobility and the
accuracy/overhead frontier across refresh intervals — the quantified
version of "this might introduce additional overhead to any
mobility-aware P2P system".
"""

from repro.underlay import (
    MobilityConfig,
    Underlay,
    UnderlayConfig,
    cached_info_accuracy,
    generate_mobility,
    refresh_tradeoff,
)


def test_ablation_mobility_staleness(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=150, seed=8))

    def run():
        trace = generate_mobility(
            underlay,
            MobilityConfig(mobile_fraction=0.4, mean_dwell_h=2.0),
            horizon_h=24.0,
            rng=3,
        )
        decay = cached_info_accuracy(trace, [0, 1, 2, 4, 8, 16, 24])
        frontier = refresh_tradeoff(trace, [0.25, 0.5, 1.0, 2.0, 4.0, 8.0])
        return trace, decay, frontier

    trace, decay, frontier = once(run)
    print(f"\nmobile hosts: {len(trace.mobile_hosts())}, "
          f"moves over 24h: {trace.total_moves()}")
    print("snapshot accuracy decay: " + ", ".join(
        f"t={r['t_h']:.0f}h:{r['accuracy']:.2f}" for r in decay))
    print("refresh frontier:")
    for r in frontier:
        print(f"  every {r['refresh_interval_h']:5.2f}h -> "
              f"accuracy {r['mean_accuracy']:.3f}, "
              f"{r['refresh_bytes'] / 1024:.0f} KB re-query traffic")

    # snapshot accuracy decays monotonically (modulo return-moves noise)
    accs = [r["accuracy"] for r in decay]
    assert accs[0] == 1.0
    assert accs[-1] < 0.9
    assert min(accs) >= 1.0 - 0.45  # 40% mobile: static majority holds

    # frontier: faster refresh = better accuracy = more overhead
    f_acc = [r["mean_accuracy"] for r in frontier]
    f_bytes = [r["refresh_bytes"] for r in frontier]
    assert all(a >= b - 0.02 for a, b in zip(f_acc, f_acc[1:]))
    assert all(a > b for a, b in zip(f_bytes, f_bytes[1:]))
    assert f_acc[0] > 0.97  # sub-dwell refresh keeps info fresh
