"""Micro-benchmarks of the struct-of-arrays peer state at scale.

``test_scale_artifact`` runs the churn/liveness transition workload for
both layouts (:class:`~repro.core.peerstate.PeerState` columns vs the
retained :class:`~repro.core.peerstate.PeerStateReference` objects) at
N = 10^3 / 10^4 / 10^5 hosts, each measurement in a **forked child
process** so peak RSS (``getrusage.ru_maxrss``) is attributable to that
(impl, N) cell, and records events/sec + peak RSS in ``BENCH_scale.json``
at the repo root.  The headline claim — >= 3x state transitions/sec over
the object layout at N = 10^4 — is asserted on every run.

The scheduling section times population-scale event insertion through
:class:`~repro.sim.shard.ShardedScheduler` (one batched
``schedule_many``) against a serial ``schedule`` loop.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import resource
import time

from repro.core.peerstate import ONLINE, OFFLINE, PeerState, PeerStateReference
from repro.sim import Simulation
from repro.sim.shard import ShardedScheduler

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SIZES = (1_000, 10_000, 100_000)


def _rss_now_kb() -> int:
    for line in pathlib.Path("/proc/self/status").read_text().splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1])
    return 0


def _liveness_workload(impl: str, n: int) -> dict:
    """Admit ``n`` hosts, then drive 10n liveness transitions in rotating
    cohorts of n/10 (the churn hot path: mark a cohort online, scan the
    online population, mark it offline).

    Each layout runs its natural steady-state calling convention: the
    SoA arm resolves cohorts to slot vectors once and then issues
    vectorised column writes; the object arm's handle *is* the host key,
    so every transition walks key -> record -> attribute — that per-peer
    pointer chase is precisely the layout cost being measured."""
    state = PeerState(initial_capacity=n) if impl == "soa" else PeerStateReference()
    hosts = list(range(n))
    rss_before_kb = _rss_now_kb()
    for h in hosts:
        state.admit(h, region=h % 64)

    block = max(1, n // 10)
    rounds = 50
    cohorts = [
        hosts[(r * block) % n : (r * block) % n + block] for r in range(rounds)
    ]
    if impl == "soa":
        cohorts = [state.slots_of(c) for c in cohorts]

    events = 0
    t0 = time.perf_counter()
    for cohort in cohorts:
        if impl == "soa":
            state.set_status_slots(cohort, ONLINE)
            state.online_count()
            state.set_status_slots(cohort, OFFLINE)
        else:
            state.set_status_many(cohort, ONLINE)
            state.online_count()
            state.set_status_many(cohort, OFFLINE)
        events += 2 * len(cohort)
    elapsed = time.perf_counter() - t0

    out = {
        "n_hosts": n,
        "events": events,
        "events_per_sec": round(events / elapsed),
        "elapsed_ms": round(elapsed * 1e3, 3),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "state_rss_delta_mb": round(max(0, _rss_now_kb() - rss_before_kb) / 1024, 1),
    }
    if impl == "soa":
        out["column_bytes"] = state.memory_bytes()
    return out


def _measure_in_child(impl: str, n: int) -> dict:
    """Fork one child per (impl, N) cell so ru_maxrss is per-measurement."""
    ctx = multiprocessing.get_context("fork")
    rx, tx = ctx.Pipe(duplex=False)

    def run() -> None:
        tx.send(_liveness_workload(impl, n))
        tx.close()

    proc = ctx.Process(target=run)
    proc.start()
    result = rx.recv()
    proc.join()
    assert proc.exitcode == 0
    return result


def _scheduling_workload(n: int) -> dict:
    """Insert one staggered event per host: serial heappush loop vs an
    AS-sharded defer + one batched flush.  Insertion is call-overhead
    bound in CPython, so the point recorded here is that the
    order-preserving batch path stays within a small constant of serial
    (its value is the determinism-preserving shard structure, not raw
    insert rate — the throughput claims live in the liveness section)."""

    def noop() -> None:
        pass

    events = [(i % 64, float(i % 997), noop) for i in range(n)]

    sim = Simulation()
    t0 = time.perf_counter()
    for _shard, delay, cb in events:
        sim.schedule(delay, cb)
    serial_s = time.perf_counter() - t0

    sim = Simulation()
    sched = ShardedScheduler(sim)
    t0 = time.perf_counter()
    for shard, delay, cb in events:
        sched.defer(shard, delay, cb)
    sched.flush()
    sharded_s = time.perf_counter() - t0

    return {
        "n_events": n,
        "serial_inserts_per_sec": round(n / serial_s),
        "sharded_inserts_per_sec": round(n / sharded_s),
        "sharded_overhead_ratio": round(sharded_s / serial_s, 2),
    }


def test_liveness_transitions_soa_10k(benchmark):
    state = PeerState(initial_capacity=10_000)
    hosts = list(range(10_000))
    for h in hosts:
        state.admit(h)

    def transitions():
        state.set_status_many(hosts, ONLINE)
        state.set_status_many(hosts, OFFLINE)

    benchmark(transitions)
    assert state.online_count() == 0


def test_sharded_insert_100k(benchmark):
    def insert():
        sim = Simulation()
        sched = ShardedScheduler(sim)
        for i in range(100_000):
            sched.defer(i % 64, float(i % 997), _noop)
        return len(sched.flush())

    assert benchmark(insert) == 100_000


def _noop() -> None:
    pass


def test_scale_artifact():
    """Record events/sec + peak RSS vs N for both layouts in
    BENCH_scale.json and hold the headline claim: >= 3x state
    transitions/sec over the object reference at N = 10^4."""
    artifact: dict = {"liveness": {"soa": {}, "reference": {}}}
    for impl in ("soa", "reference"):
        for n in SIZES:
            artifact["liveness"][impl][f"n_{n}"] = _measure_in_child(impl, n)

    artifact["scheduling"] = {"n_100000": _scheduling_workload(100_000)}

    soa_10k = artifact["liveness"]["soa"]["n_10000"]["events_per_sec"]
    ref_10k = artifact["liveness"]["reference"]["n_10000"]["events_per_sec"]
    artifact["headline"] = {
        "transitions_speedup_n10000": round(soa_10k / ref_10k, 2),
        "claim": "SoA liveness transitions >= 3x the object layout at N=10^4",
    }

    (REPO_ROOT / "BENCH_scale.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    assert soa_10k >= 3.0 * ref_10k, artifact["headline"]
    # memory scales sub-linearly in hosts for the columns themselves
    assert artifact["liveness"]["soa"]["n_100000"]["column_bytes"] < 8 * 2**20
