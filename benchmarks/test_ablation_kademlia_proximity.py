"""Ablation: PNS / PR in Kademlia (DESIGN.md §4, Kaune et al. [17]).

Grid over the two proximity techniques; reports lookup latency, RPC cost
and routing-table contact RTT, plus the inter-AS traffic the DHT control
plane puts on the underlay.
"""

from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def _run_arm(pns: bool, pr: bool, seed: int = 6):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=100, seed=seed))
    sim = Simulation()
    bus, acct = underlay.message_bus(sim)
    net = KademliaNetwork(
        underlay, sim, bus,
        config=KademliaConfig(proximity_buckets=pns, proximity_routing=pr),
        rng=3,
    )
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=120_000)
    stats = net.run_value_workload(40, 120)
    return {
        "pns": pns,
        "pr": pr,
        "success": stats.success_rate,
        "median_lookup_ms": stats.median_latency_ms,
        "mean_rpcs": stats.mean_rpcs,
        "contact_rtt_ms": net.mean_contact_rtt(),
        "transit_bytes": acct.summary.transit_bytes,
    }


def test_ablation_kademlia_proximity(once):
    def run_grid():
        return [
            _run_arm(pns, pr)
            for pns, pr in ((False, False), (True, False), (False, True), (True, True))
        ]

    rows = once(run_grid)
    print()
    for r in rows:
        print(
            f"PNS={str(r['pns']):5s} PR={str(r['pr']):5s} "
            f"succ={r['success']:.2f} lookup={r['median_lookup_ms']:.0f}ms "
            f"rpcs={r['mean_rpcs']:.1f} contactRTT={r['contact_rtt_ms']:.0f}ms "
            f"transit={r['transit_bytes']}"
        )
    base = rows[0]
    pns = rows[1]
    both = rows[3]
    # correctness is never sacrificed
    assert all(r["success"] >= 0.95 for r in rows)
    # PNS lowers both the retained-contact RTT and lookup latency
    assert pns["contact_rtt_ms"] < 0.9 * base["contact_rtt_ms"]
    assert pns["median_lookup_ms"] < base["median_lookup_ms"]
    # combining PR keeps contact RTT low
    assert both["contact_rtt_ms"] < 0.9 * base["contact_rtt_ms"]
