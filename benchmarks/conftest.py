"""Benchmark-suite configuration.

Each benchmark runs its experiment once (rounds=1) — these are
experiment-regeneration harnesses, not micro-benchmarks — prints the same
rows the paper's figure/table reports, and asserts the qualitative shape.

``--substrate-cache [DIR]`` turns on the process-wide substrate cache for
the whole benchmark session, so figure/table suites that regenerate the
same ``(UnderlayConfig, seed)`` pay underlay construction once per unique
substrate (off by default: every run stays bit-for-bit the seed
behaviour unless explicitly opted in).

``--workers N`` configures the process-wide :mod:`repro.runner` default,
fanning multi-arm sweeps (seed robustness, RESILIENCE, testlab, the
fig4/fig6 arms) out over N forked workers; rows are identical to serial.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--substrate-cache",
        action="store",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="memoise generated underlays for the whole benchmark session "
        "(optionally persisting hop/delay matrices to DIR)",
    )
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        metavar="N",
        help="fan multi-arm experiment sweeps out over N worker processes "
        "for the whole benchmark session (repro.runner; rows are identical "
        "to the serial run)",
    )


def pytest_configure(config):
    opt = config.getoption("--substrate-cache")
    if opt is not None:
        from repro.underlay.cache import configure_default_cache

        configure_default_cache(disk_dir=opt or None)
    workers = config.getoption("--workers")
    if workers is not None:
        from repro.runner import configure_default_workers

        configure_default_workers(workers)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark clock and return its
    result (pytest-benchmark re-runs callables by default; experiments are
    deterministic and expensive, one round is the right cost/precision)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
