"""Benchmark-suite configuration.

Each benchmark runs its experiment once (rounds=1) — these are
experiment-regeneration harnesses, not micro-benchmarks — prints the same
rows the paper's figure/table reports, and asserts the qualitative shape.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark clock and return its
    result (pytest-benchmark re-runs callables by default; experiments are
    deterministic and expensive, one round is the right cost/precision)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
