"""CI guard: fail when the service load-driver path regresses by >3x.

Re-runs one knee step of the service benchmark — a Kademlia population
driven open-loop at 120 ops/s, retrieve-only, per-origin gate of 1 —
and compares the driver's wall-clock op rate against the loose floor in
``service_floor.json``; the 3x headroom means only a real complexity
regression trips it, not machine-to-machine noise.  If a fresh
``BENCH_service.json`` exists at the repo root (written by
``benchmarks/test_microbench_service.py``), its recorded headline — the
saturation knee is visible, p99 ratio >= 5x across the sweep — is
validated too.

Usage:  PYTHONPATH=src python benchmarks/check_service_floor.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.service import Bootstrapper, ServiceConfig

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
REGRESSION_FACTOR = 3.0
HEADLINE_KNEE_RATIO = 5.0
N_HOSTS = 16
SEED = 13
RATE_PER_S = 120.0


def _ops_per_sec_wall() -> float:
    boot = Bootstrapper(
        ServiceConfig(
            overlay="kademlia", n_hosts=N_HOSTS, seed=SEED,
            settle_ms=20_000.0, n_seed_keys=24,
        )
    )
    boot.build()
    boot.default_mix = lambda: [boot.ops.retrieve_spec()]
    t0 = time.perf_counter()
    report = boot.drive_sync(
        process="poisson", rate_per_s=RATE_PER_S, duration_ms=15_000.0,
        drain_ms=120_000.0, timeout_ms=None, concurrency_per_origin=1,
    )
    elapsed = time.perf_counter() - t0
    boot.stop_sync()
    assert report.succeeded == report.issued > 0
    return report.issued / elapsed


def main() -> int:
    floor = json.loads((HERE / "service_floor.json").read_text())[
        "service_driver_ops_per_sec_wall"
    ]
    limit = floor / REGRESSION_FACTOR

    rate = _ops_per_sec_wall()
    verdict = "OK" if rate >= limit else "REGRESSION"
    print(
        f"Service driver, retrieve mix at {RATE_PER_S:.0f} ops/s offered "
        f"(N={N_HOSTS}): {rate:.0f} ops/s wall "
        f"(floor {floor:.0f}, limit {limit:.0f}) -> {verdict}"
    )
    failed = rate < limit

    bench = REPO_ROOT / "BENCH_service.json"
    if bench.exists():
        headline = json.loads(bench.read_text())["headline"]
        ratio = headline["p99_ratio_max_over_min_rate"]
        ok = ratio >= HEADLINE_KNEE_RATIO
        print(
            f"BENCH_service.json headline: p99 grows {ratio:.2f}x across "
            f"the offered-load sweep (required >= "
            f"{HEADLINE_KNEE_RATIO:.0f}x) -> {'OK' if ok else 'REGRESSION'}"
        )
        failed = failed or not ok
    else:
        print("BENCH_service.json not present - skipping headline validation")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
