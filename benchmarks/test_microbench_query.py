"""Micro-benchmarks of the frontier-batched query plane (PR 10).

``test_query_artifact`` writes ``BENCH_query.json`` at the repo root:

- **flood**: wall cost of fig5-style Gnutella query floods over a
  2000-ultrapeer directly-wired mesh (query_ttl=5, stream delay
  backend, bare bus), batch kernel vs the retained per-message
  reference path.  Traffic totals are asserted identical between the
  arms — the speedup is bought by expansion strategy, not by sending
  less.  The headline claim — >= 5x floods/sec — is asserted on every
  run.
- **kademlia_rounds**: wall time of a value-lookup workload with
  round-batched RPC issue (``RequestManager.issue_many``) vs
  per-RPC issue, recorded for the artifact (no floor asserted; the
  lookup path is dominated by handler work, not issue overhead).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork
from repro.overlay.kademlia.network import KademliaNetwork
from repro.overlay.kademlia.node import KademliaConfig
from repro.sim import MessageBus, Simulation
from repro.underlay import Underlay, UnderlayConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

N_HOSTS = 2000
DEGREE = 6          # ring-lattice UP degree (3 each side)
N_QUERIES = 8       # floods per timed round
REPEATS = 3         # best-of repeats per arm
N_KEYWORDS = 31


def build_mesh(underlay: Underlay, backend: str, *, seed: int = 29):
    """A 2000-ultrapeer mesh wired directly as a random graph (ring for
    connectivity + DEGREE random chords): the join protocol at this
    scale is its own benchmark, not this one's.  With ttl=5 every flood
    saturates the mesh, as in the fig5 workload."""
    import numpy as np

    sim = Simulation()
    bus = MessageBus(sim, underlay)
    net = GnutellaNetwork(
        underlay, sim, bus,
        config=GnutellaConfig(query_ttl=5, max_up_neighbors=DEGREE),
        rng=seed, query_backend=backend,
    )
    net.add_population(underlay.hosts, ultrapeer_fraction=1.0)
    n = len(underlay.hosts)
    rng = np.random.default_rng(seed)
    for node in net.nodes.values():
        hid = node.host_id
        node.neighbors.add((hid + 1) % n)
        node.neighbors.add((hid - 1) % n)
        for peer in rng.integers(0, n, DEGREE):
            if peer != hid:
                node.neighbors.add(int(peer))
                net.nodes[int(peer)].neighbors.add(hid)
    for h in underlay.hosts:
        net.share_content(h.host_id, [h.host_id % N_KEYWORDS])
    return sim, bus, net


def _flood_round(sim, net, base: int) -> float:
    """Issue N_QUERIES searches from spread origins and drain to
    quiescence; returns elapsed seconds."""
    n = len(net.nodes)
    t0 = time.perf_counter()
    for i in range(N_QUERIES):
        net.search((base + i * (n // N_QUERIES)) % n, (base + i) % N_KEYWORDS)
    sim.run()
    return time.perf_counter() - t0


def _measure_arm(underlay: Underlay, backend: str) -> tuple[float, tuple]:
    sim, bus, net = build_mesh(underlay, backend)
    _flood_round(sim, net, 0)  # warm: imports, memo, seen-filter columns
    best = min(_flood_round(sim, net, 1 + r) for r in range(REPEATS))
    totals = (
        bus.stats.sent, bus.stats.delivered, bus.stats.bytes_sent,
        bus.stats.dropped_loss, tuple(sorted(bus.stats.by_kind.items())),
        net.message_counts()["dropped_duplicate"],
        net.message_counts()["dropped_ttl"],
    )
    return best, totals


def test_query_artifact():
    """Record the query-plane numbers in BENCH_query.json and hold the
    headline claim: frontier-batched flood expansion sustains >= 5x the
    floods/sec of the per-message reference path."""
    underlay = Underlay.generate(
        UnderlayConfig(n_hosts=N_HOSTS, seed=29, delay_backend="stream")
    )
    batch_s, batch_totals = _measure_arm(underlay, "batch")
    reference_s, reference_totals = _measure_arm(underlay, "reference")
    assert batch_totals == reference_totals, "arms diverged; speedup is void"

    speedup = reference_s / batch_s
    artifact = {
        "flood": {
            "n_hosts": N_HOSTS,
            "degree": DEGREE,
            "query_ttl": 5,
            "floods_per_round": N_QUERIES,
            "query_sends_per_round": dict(batch_totals[4])["QUERY"] // (
                REPEATS + 1
            ),
            "batch_ms_per_flood": round(batch_s / N_QUERIES * 1e3, 3),
            "reference_ms_per_flood": round(reference_s / N_QUERIES * 1e3, 3),
            "batch_floods_per_sec": round(N_QUERIES / batch_s, 2),
            "reference_floods_per_sec": round(N_QUERIES / reference_s, 2),
        },
        "kademlia_rounds": _kademlia_section(),
        "headline": {
            "flood_speedup": round(speedup, 2),
            "claim": (
                "frontier-batched flood expansion >= 5x the per-message "
                "reference on 2000-ultrapeer ttl=5 floods"
            ),
        },
    }
    (REPO_ROOT / "BENCH_query.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    assert speedup >= 5.0, artifact["headline"]


def _kademlia_section(n_hosts: int = 400, seed: int = 31) -> dict:
    underlay = Underlay.generate(
        UnderlayConfig(n_hosts=n_hosts, seed=seed, delay_backend="stream")
    )

    def measure(batching: bool) -> float:
        sim = Simulation()
        bus = MessageBus(sim, underlay)
        net = KademliaNetwork(
            underlay, sim, bus,
            config=KademliaConfig(round_batching=batching), rng=seed,
        )
        net.add_all_hosts()
        net.bootstrap_all()
        sim.run()
        t0 = time.perf_counter()
        net.run_value_workload(40, 80)
        return time.perf_counter() - t0

    measure(True)  # warm: imports, routing-table code paths
    batched_s = min(measure(True) for _ in range(REPEATS))
    per_rpc_s = min(measure(False) for _ in range(REPEATS))
    return {
        "n_hosts": n_hosts,
        "lookups": 80,
        "batched_s": round(batched_s, 3),
        "per_rpc_s": round(per_rpc_s, 3),
        "ratio": round(per_rpc_s / batched_s, 2),
    }
