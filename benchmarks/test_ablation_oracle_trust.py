"""Ablation: the §6 trust problem — whose interest does the oracle serve?

The same download workload consults an oracle under three policies:
HONEST (the [1] oracle: pure hop ranking), COOPERATIVE (the ISP also uses
its subscriber-plan knowledge for the users), MALICIOUS (a spoofed oracle
ranking farthest-first).
Clients cannot distinguish them from the protocol — only the outcomes
differ, which is why the survey calls ISP-provided information an open
trust issue.
"""

import numpy as np

from repro.collection import ISPOracle, OraclePolicy
from repro.rng import ensure_rng
from repro.underlay import Underlay, UnderlayConfig
from repro.underlay.autonomous_system import LinkType
from repro.underlay.topology import TopologyConfig

FILE_BYTES = 4_000_000
CONGESTED_RATE_FACTOR = 0.45


def _crosses_transit(u, a, b):
    if u.asn_of(a) == u.asn_of(b):
        return False
    return any(
        t is LinkType.TRANSIT
        for _x, _y, t in u.routing.path_links(u.asn_of(a), u.asn_of(b))
    )


def test_ablation_oracle_trust(once):
    underlay = Underlay.generate(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=16, n_regions=4),
            n_hosts=160,
            seed=22,
        )
    )

    def run():
        ids = underlay.host_ids()
        rows = []
        for policy in OraclePolicy:
            oracle = ISPOracle(underlay, policy=policy)
            rng = ensure_rng(5)
            times, transit_bytes, same_as = [], 0.0, 0
            n = 200
            for _ in range(n):
                req = ids[int(rng.integers(len(ids)))]
                holders = [
                    int(h)
                    for h in rng.choice(
                        [x for x in ids if x != req], size=6, replace=False
                    )
                ]
                src = oracle.rank(req, holders)[0]
                rate = min(
                    underlay.host(src).resources.bandwidth_up_kbps,
                    underlay.host(req).resources.bandwidth_down_kbps,
                ) * 1000.0 / 8.0
                if _crosses_transit(underlay, req, src):
                    rate *= CONGESTED_RATE_FACTOR
                    transit_bytes += FILE_BYTES
                if underlay.asn_of(src) == underlay.asn_of(req):
                    same_as += 1
                times.append(FILE_BYTES / max(rate, 1.0))
            rows.append(
                {
                    "policy": policy.value,
                    "mean_download_s": float(np.mean(times)),
                    "transit_mb": transit_bytes / 1e6,
                    "same_as_rate": same_as / n,
                }
            )
        return rows

    rows = once(run)
    print()
    for r in rows:
        print(f"  {r['policy']:10s} dl={r['mean_download_s']:.0f}s "
              f"transit={r['transit_mb']:.0f}MB same-AS={r['same_as_rate']:.2f}")
    by = {r["policy"]: r for r in rows}
    honest, coop, malicious = (
        by["honest"], by["cooperative"], by["malicious"]
    )
    # honest and cooperative serve the ISP equally (same locality) ...
    assert abs(honest["same_as_rate"] - coop["same_as_rate"]) < 0.05
    assert abs(honest["transit_mb"] - coop["transit_mb"]) / max(honest["transit_mb"], 1e-9) < 0.15
    # ... but the cooperative tie-breaks serve users better — the §5.3
    # joint-venture upside of trusting the ISP with more information
    assert coop["mean_download_s"] < honest["mean_download_s"]
    # the spoofed oracle is worst: max transit, zero locality, slow
    assert malicious["transit_mb"] > honest["transit_mb"]
    assert malicious["same_as_rate"] < 0.05
    assert malicious["mean_download_s"] > coop["mean_download_s"]
