"""FRAMEWORK bench: the §7 architecture claim — composite QoS profiles
blend the benefits of the single information types they weight."""

from repro.experiments import print_table
from repro.experiments.framework_composite import run_framework_composite


def test_framework_composite(once):
    result = once(run_framework_composite)
    print_table(result)
    rows = {r["arm"]: r for r in result.rows}
    rand = rows["random"]

    # each single-information arm wins its own axis vs random
    assert rows["only:latency"]["neighbor_rtt_ms"] < 0.8 * rand["neighbor_rtt_ms"]
    assert rows["only:isp-location"]["intra_as_edges"] > 3 * rand["intra_as_edges"]
    assert (
        rows["only:peer-resources"]["neighbor_session_h"]
        > 1.2 * rand["neighbor_session_h"]
    )

    # composites blend: file-sharing (ISP 0.6 + resources 0.4) beats random
    # on BOTH its axes simultaneously — which no single-info arm guarantees
    fs = rows["profile:file-sharing"]
    assert fs["intra_as_edges"] > 2 * rand["intra_as_edges"]
    assert fs["neighbor_session_h"] > 1.15 * rand["neighbor_session_h"]
    # and it is more stable than pure ISP-location while staying far more
    # local than pure resources
    assert fs["neighbor_session_h"] > rows["only:isp-location"]["neighbor_session_h"]
    assert fs["intra_as_edges"] > 2 * rows["only:peer-resources"]["intra_as_edges"]

    # real-time profile (latency 0.8 + ISP 0.2) ~matches pure latency on RTT
    rt = rows["profile:real-time-communication"]
    assert rt["neighbor_rtt_ms"] < 1.1 * rows["only:latency"]["neighbor_rtt_ms"]

    # hybrid-directory (resources 0.6 + latency 0.4): stable AND faster
    # than pure resources
    hd = rows["profile:hybrid-directory"]
    assert hd["neighbor_session_h"] > 1.25 * rand["neighbor_session_h"]
    assert hd["neighbor_rtt_ms"] < rows["only:peer-resources"]["neighbor_rtt_ms"]
