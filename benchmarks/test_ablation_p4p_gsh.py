"""Ablation: the two 'extension' localisation mechanisms.

- **P4P** [29]: soft p-distance weighting vs the hard oracle ranking —
  how much locality does probabilistic guidance buy, and what does the
  softness knob trade?
- **GSH / Leopard** [33]: region-scoped ids vs plain Kademlia — regional
  contact share and intra-AS control traffic.
"""

import numpy as np

from repro.collection import P4PService
from repro.overlay.kademlia import KademliaNetwork, ScopedKademlia
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def test_ablation_p4p_softness(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=150, seed=16))

    def run():
        p4p = P4PService(underlay)
        ids = underlay.host_ids()
        rows = []
        for softness in (0.2, 1.0, 5.0):
            same = hops = 0
            n_trials = 60
            for t in range(n_trials):
                q = ids[t % len(ids)]
                picks = p4p.pick_peers(q, [c for c in ids if c != q], 8,
                                       softness=softness, rng=t)
                same += sum(
                    1 for c in picks if underlay.asn_of(c) == underlay.asn_of(q)
                )
                hops += sum(
                    underlay.routing.hops(underlay.asn_of(q), underlay.asn_of(c))
                    for c in picks
                )
            rows.append(
                {
                    "softness": softness,
                    "same_pid_rate": same / (8 * n_trials),
                    "mean_as_hops": hops / (8 * n_trials),
                }
            )
        return rows

    rows = once(run)
    print()
    for r in rows:
        print(f"  softness={r['softness']:.1f} same-PID={r['same_pid_rate']:.2f} "
              f"hops={r['mean_as_hops']:.2f}")
    # harder guidance (low softness) -> more local picks, fewer AS hops
    assert rows[0]["same_pid_rate"] > rows[-1]["same_pid_rate"]
    assert rows[0]["mean_as_hops"] < rows[-1]["mean_as_hops"]


def test_ablation_scoped_hashing(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=100, seed=26))

    def run(scoped: bool):
        sim = Simulation()
        bus, acct = underlay.message_bus(sim)
        if scoped:
            net = ScopedKademlia(underlay, sim, bus, rng=4)
            net.add_all_hosts()
            net.bootstrap_all()
            sim.run(until=120_000)
            inner = net.network
            regional = net.same_region_contact_fraction()
        else:
            inner = KademliaNetwork(underlay, sim, bus, rng=4,
                                    use_coordinate_estimates=False)
            inner.add_all_hosts()
            inner.bootstrap_all()
            sim.run(until=120_000)
            regions = {
                hid: max(
                    underlay.topology.asys(underlay.asn_of(hid)).region, 0
                )
                for hid in inner.nodes
            }
            same = total = 0
            for hid, node in inner.nodes.items():
                for c in node.routing_table.all_contacts():
                    total += 1
                    same += regions[c.host_id] == regions[hid]
            regional = same / total if total else 0.0
        stats = inner.run_value_workload(25, 80)
        return {
            "regional_contacts": regional,
            "success": stats.success_rate,
            "intra_as_traffic": acct.summary.intra_as_fraction,
        }

    def run_both():
        return run(False), run(True)

    plain, scoped = once(run_both)
    print(f"\n  plain : {plain}")
    print(f"  scoped: {scoped}")
    assert scoped["success"] >= 0.95 and plain["success"] >= 0.95
    # the GSH claim: scoped ids concentrate routing state regionally and
    # keep more control traffic inside the AS
    assert scoped["regional_contacts"] > 1.3 * plain["regional_contacts"]
    assert scoped["intra_as_traffic"] > plain["intra_as_traffic"]
