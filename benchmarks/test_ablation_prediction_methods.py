"""Ablation: the full §3.2 latency-acquisition spectrum on one underlay.

Five ways to know the RTT between arbitrary peers, from most to least
expensive: full-mesh ping, gMeasure (group-based), GNP landmarks, live
Vivaldi gossip, and ICS PCA landmarks.  For each: median relative error
and the number of probe messages spent — the accuracy/overhead frontier
that Figure 3 sketches and §3.2 discusses.
"""

import numpy as np

from repro.collection import GroupMeasurement, PingService, VivaldiGossipService
from repro.coords import GNPConfig, GNPSystem, ICS, ICSConfig
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def test_ablation_prediction_methods(once):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=60, seed=18))
    ids = underlay.host_ids()
    rtt = underlay.rtt_matrix()
    n = len(ids)
    iu = np.triu_indices(n, 1)

    def med_err(pred):
        mask = rtt[iu] > 0
        return float(np.median(np.abs(pred[iu][mask] - rtt[iu][mask]) / rtt[iu][mask]))

    def run():
        rows = []
        # full-mesh explicit measurement
        ping = PingService(underlay, rng=1)
        mesh = ping.measure_matrix(ids, probes=1)
        rows.append({"method": "full-mesh ping", "median_err": med_err(mesh),
                     "probe_msgs": ping.overhead.messages})

        # gMeasure
        gm = GroupMeasurement(underlay, rng=2)
        gm.build()
        rows.append({"method": "gMeasure", "median_err": med_err(gm.estimated_matrix(ids)),
                     "probe_msgs": gm.ping.overhead.messages})

        # GNP landmarks
        nb = 12
        gnp = GNPSystem(rtt[:nb, :nb], GNPConfig(dim=3), seed=3)
        coords = np.array([gnp.host_coordinate(rtt[i, :nb]) for i in range(n)])
        diff = coords[:, None, :] - coords[None, :, :]
        pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(pred, 0.0)
        rows.append({"method": "GNP (12 landmarks)", "median_err": med_err(pred),
                     "probe_msgs": 2 * (nb * (nb - 1) // 2 + n * nb)})

        # live Vivaldi gossip
        sim = Simulation()
        bus, _ = underlay.message_bus(sim, with_accounting=False)
        viv = VivaldiGossipService(underlay, sim, bus, probe_period_ms=3000.0, rng=4)
        sim.run(until=450_000)
        rows.append({"method": "Vivaldi gossip", "median_err": viv.median_relative_error(),
                     "probe_msgs": viv.overhead.messages})

        # ICS PCA landmarks
        ics = ICS(rtt[:nb, :nb], ICSConfig(variance_threshold=0.995))
        hcoords = ics.host_coordinates(rtt[:, :nb])
        diff = hcoords[:, None, :] - hcoords[None, :, :]
        pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(pred, 0.0)
        rows.append({"method": "ICS (12 beacons)", "median_err": med_err(pred),
                     "probe_msgs": 2 * (nb * (nb - 1) // 2 + n * nb)})
        return rows

    rows = once(run)
    print()
    for r in rows:
        print(f"  {r['method']:20s} err={r['median_err']:.3f} "
              f"probes={r['probe_msgs']}")
    by = {r["method"]: r for r in rows}
    # measurement is exact; the one-shot predictors cost a fraction of the
    # O(n^2) mesh (Vivaldi's budget instead grows with *time*, amortising
    # over every future pair — printed, not compared at this small n)
    assert by["full-mesh ping"]["median_err"] < 0.05
    for name in ("gMeasure", "GNP (12 landmarks)"):
        assert by[name]["median_err"] < 0.35
        assert by[name]["probe_msgs"] < 0.5 * by["full-mesh ping"]["probe_msgs"]
    assert by["Vivaldi gossip"]["median_err"] < 0.35
    # ICS, the linear method, is the coarsest of the predictors
    assert by["ICS (12 beacons)"]["median_err"] >= by["GNP (12 landmarks)"]["median_err"]


def test_ablation_hierarchical_dht(once):
    """Plethora-style two-level DHT: local resolution rate and plane load."""
    from repro.overlay import HierarchicalDHT

    underlay = Underlay.generate(UnderlayConfig(n_hosts=80, seed=9))

    def run():
        sim = Simulation()
        h = HierarchicalDHT(underlay, sim, rng=2)
        h.bootstrap_all()
        sim.run(until=120_000)
        ids = underlay.host_ids()
        rng = np.random.default_rng(7)
        keys = []
        for i in range(20):
            owner = ids[int(rng.integers(len(ids)))]
            h.publish(owner, f"doc-{i}")
            keys.append((f"doc-{i}", owner))
        sim.run(until=sim.now + 60_000)
        # two waves of readers: the second benefits from cache promotion
        for wave in range(2):
            for i, (content, _owner) in enumerate(keys):
                reader = ids[(7 * i + wave * 13 + 1) % len(ids)]
                h.lookup(reader, content)
            sim.run(until=sim.now + 90_000)
        return h

    h = once(run)
    traffic = h.plane_traffic()
    n_keys = 20
    wave1 = [l for l in h.lookups[:n_keys] if l.done and l.values]
    wave2 = [l for l in h.lookups[n_keys:] if l.done and l.values]
    rate1 = sum(1 for l in wave1 if l.resolved_locally) / max(len(wave1), 1)
    rate2 = sum(1 for l in wave2 if l.resolved_locally) / max(len(wave2), 1)
    print(f"\n  success={h.success_rate():.2f} "
          f"local wave1={rate1:.2f} wave2={rate2:.2f} traffic={traffic}")
    assert h.success_rate() > 0.9
    # the Plethora effect: cache promotion raises the local-resolution
    # rate between the first and second read waves
    assert rate2 > rate1
    assert h.local_resolution_rate() > 0.1
    assert traffic["local_bytes"] > 0
