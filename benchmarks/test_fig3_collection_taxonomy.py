"""FIG3 bench: the measured collection-taxonomy trade-off table."""

from repro.experiments import print_table, run_fig3


def test_fig3_collection_taxonomy(once):
    result = once(run_fig3, n_hosts=80, seed=21)
    print_table(result)
    rows = {r["method"]: r for r in result.rows}
    assert len(rows) == 8  # every Figure 3 leaf measured

    # explicit measurement: near-perfect accuracy but the highest cost per
    # answerable pair; prediction covers every pair from O(n) samples
    ping = rows["explicit-measurements"]
    pred = rows["prediction-methods"]
    assert ping["accuracy"] > 0.9
    assert ping["overhead_bytes"] > pred["overhead_bytes"]
    assert pred["accuracy"] > 0.6

    # GPS: metre-scale accuracy at zero network overhead, partial coverage
    assert rows["gps"]["overhead_bytes"] == 0.0
    assert rows["gps"]["accuracy"] > rows["ip-to-location-mapping"]["accuracy"]
    assert rows["gps"]["coverage"] < rows["ip-to-location-mapping"]["coverage"]

    # oracle finds a hop-optimal candidate for almost everyone
    assert rows["isp-component-in-network"]["accuracy"] > 0.95
    # the IP mapping database is only as good as configured (95%)
    assert 0.85 <= rows["ip-to-isp-mapping"]["accuracy"] <= 1.0
    # Ono-style inference discriminates same-AS from far pairs
    assert rows["cdn-provided-information"]["accuracy"] > 0.2
    # SkyEye recovers the true top-10 capacity peers
    assert rows["information-management-overlay"]["accuracy"] >= 0.9
