"""TAB1 bench: exercise one representative per surveyed system class."""

from repro.collection import UnderlayInfoType
from repro.core import TABLE1_SYSTEMS, systems_by_type
from repro.experiments import print_table, run_table1


def test_table1_systems(once):
    result = once(run_table1, n_hosts=80, seed=23)
    print_table(result)
    rows = {r["system"]: r for r in result.rows}

    # registry coverage: the catalogue holds every Table 1 row of the paper
    assert len(TABLE1_SYSTEMS) >= 20
    assert len(systems_by_type(UnderlayInfoType.ISP_LOCATION)) >= 9

    # ISP-location representatives
    assert rows["Oracle [1]"]["value"] <= 1.0      # top candidate 0-1 AS hops
    assert rows["BNS [3]"]["value"] > 0.05         # transit share cut
    assert rows["Ono [5]"]["value"] > 0.25         # ratio-map signal

    # latency representatives: usable embeddings, PNS gains
    assert rows["Vivaldi [7]"]["value"] < 0.3
    assert rows["ICS [20]"]["value"] < 0.7
    assert rows["GNP/landmarks [26]"]["value"] < 0.4
    assert rows["Proximity in Kademlia [17][4]"]["value"] > 0.05

    # geolocation representative: zone co-members far closer than random
    assert rows["Globase.KOM [19]"]["value"] < 0.6

    # peer-resources representatives
    assert rows["SkyEye.KOM [11]"]["value"] >= 0.9
    assert rows["Bandwidth/capacity-aware roles [6][11]"]["value"] > 0.3
    assert rows["Bandwidth-aware P2P-TV [6]"]["value"] > 0.05
