"""Regenerate docs/api.md from the live docstrings.

Usage:  python docs/_gen_api.py > docs/api.md
"""

import importlib
import inspect
import pkgutil

import repro


def first_line(obj) -> str:
    doc = inspect.getdoc(obj)
    return (doc.splitlines()[0] if doc else "").strip()


def main() -> None:
    print("# API reference (generated)\n")
    print("One line per public item, from the live docstrings. Regenerate with")
    print("`python docs/_gen_api.py > docs/api.md`.\n")
    print("Performance notes for the underlay substrate (fast kernels, lazy")
    print("matrices, the substrate cache) live in")
    print("[docs/performance.md](performance.md); the fault-injection model")
    print("and retry semantics in [docs/faults.md](faults.md); the service")
    print("layer (arrival processes, load drivers, the bootstrapper control")
    print("plane) in [docs/service.md](service.md).\n")
    seen = set()
    for modinfo in sorted(
        pkgutil.walk_packages(repro.__path__, prefix="repro."),
        key=lambda m: m.name,
    ):
        name = modinfo.name
        if name in seen or any(p.startswith("_") for p in name.split(".")):
            continue
        seen.add(name)
        try:
            mod = importlib.import_module(name)
        except Exception:
            continue
        public = [
            (n, obj)
            for n, obj in vars(mod).items()
            if not n.startswith("_")
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", None) == name
        ]
        if not public:
            continue
        print(f"## `{name}`\n")
        mdoc = first_line(mod)
        if mdoc:
            print(f"{mdoc}\n")
        for n, obj in sorted(public):
            kind = "class" if inspect.isclass(obj) else "def"
            print(f"- **`{kind} {n}`** — {first_line(obj)}")
        print()


if __name__ == "__main__":
    main()
