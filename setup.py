"""Setuptools shim.

The environment ships setuptools without the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable wheel.
``python setup.py develop`` provides the legacy editable path; regular
``pip install .`` users are unaffected.
"""

from setuptools import setup

setup()
