"""Unit tests for the collection taxonomy and overhead accounting."""

import pytest

from repro.collection import (
    TAXONOMY,
    CollectionMethod,
    GPSService,
    IPToISPMapping,
    IPToLocationMapping,
    ISPOracle,
    OverheadCounter,
    PingService,
    SkyEyeOverlay,
    SyntheticCDN,
    TracerouteService,
    UnderlayInfoType,
)


def test_taxonomy_covers_all_info_types():
    assert set(TAXONOMY) == set(UnderlayInfoType)
    # Figure 3 edge counts
    assert len(TAXONOMY[UnderlayInfoType.ISP_LOCATION]) == 3
    assert len(TAXONOMY[UnderlayInfoType.LATENCY]) == 2
    assert len(TAXONOMY[UnderlayInfoType.GEOLOCATION]) == 2
    assert len(TAXONOMY[UnderlayInfoType.PEER_RESOURCES]) == 1


def test_every_service_sits_on_a_figure3_edge(small_underlay):
    u = small_underlay
    services = [
        IPToISPMapping(u),
        ISPOracle(u),
        SyntheticCDN(u, rng=1),
        PingService(u, rng=1),
        TracerouteService(u, rng=1),
        GPSService(u),
        IPToLocationMapping(u),
        SkyEyeOverlay(u.host_ids()),
    ]
    positions = {s.taxonomy_position() for s in services}
    # every leaf except "prediction methods" (implemented in repro.coords)
    expected = {
        (UnderlayInfoType.ISP_LOCATION, CollectionMethod.IP_TO_ISP_MAPPING),
        (UnderlayInfoType.ISP_LOCATION, CollectionMethod.ISP_COMPONENT_IN_NETWORK),
        (UnderlayInfoType.ISP_LOCATION, CollectionMethod.CDN_PROVIDED),
        (UnderlayInfoType.LATENCY, CollectionMethod.EXPLICIT_MEASUREMENT),
        (UnderlayInfoType.GEOLOCATION, CollectionMethod.GPS),
        (UnderlayInfoType.GEOLOCATION, CollectionMethod.IP_TO_LOCATION_MAPPING),
        (UnderlayInfoType.PEER_RESOURCES, CollectionMethod.INFO_MANAGEMENT_OVERLAY),
    }
    assert positions == expected


def test_overhead_counter_charge():
    c = OverheadCounter()
    c.charge(queries=2, messages=3, bytes_on_wire=100)
    c.charge(bytes_on_wire=50)
    assert (c.queries, c.messages, c.bytes_on_wire) == (2, 3, 150)
