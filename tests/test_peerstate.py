"""Unit tests for the struct-of-arrays peer state (repro.core.peerstate).

The recycled-slot regressions at the bottom pin the bug class the
free-list design exists to prevent: a host admitted into a recycled slot
inheriting its predecessor's neighbors, bitmap bits, or liveness status.
"""

import numpy as np
import pytest

from repro.core.peerstate import (
    CRASHED,
    OFFLINE,
    ONLINE,
    ArrayNeighborSet,
    Bitmap2D,
    NeighborColumns,
    PeerState,
    SlotAllocator,
)
from repro.errors import ConfigurationError
from repro.sim import ChurnConfig, ChurnProcess, Simulation


# -- SlotAllocator ------------------------------------------------------------------
class TestSlotAllocator:
    def test_dense_allocation(self):
        alloc = SlotAllocator(4)
        assert [alloc.alloc(f"h{i}") for i in range(3)] == [0, 1, 2]
        assert len(alloc) == 3
        assert alloc.slot_of("h1") == 1
        assert alloc.host_at(2) == "h2"
        assert list(alloc.hosts()) == ["h0", "h1", "h2"]

    def test_lifo_recycling(self):
        alloc = SlotAllocator(4)
        for i in range(3):
            alloc.alloc(i)
        alloc.free(0)
        alloc.free(2)
        # LIFO: the most recently freed slot (2) is reused first
        assert alloc.alloc("new-a") == 2
        assert alloc.alloc("new-b") == 0
        assert alloc.recycles == 2
        assert alloc.alloc("fresh") == 3  # free list drained -> fresh slot

    def test_grows_past_initial_capacity(self):
        alloc = SlotAllocator(2)
        for i in range(10):
            alloc.alloc(i)
        assert alloc.capacity >= 10
        assert len(alloc) == 10
        assert [alloc.slot_of(i) for i in range(10)] == list(range(10))

    def test_double_alloc_raises(self):
        alloc = SlotAllocator()
        alloc.alloc("x")
        with pytest.raises(ConfigurationError):
            alloc.alloc("x")

    def test_free_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            SlotAllocator().free("ghost")

    def test_host_at_unallocated_raises(self):
        alloc = SlotAllocator()
        alloc.alloc("x")
        alloc.free("x")
        with pytest.raises(ConfigurationError):
            alloc.host_at(0)

    def test_invariants_hold_under_churn(self):
        alloc = SlotAllocator(2)
        rng = np.random.default_rng(0)
        live = set()
        for _ in range(500):
            if live and rng.random() < 0.45:
                host = live.pop()
                alloc.free(host)
            else:
                host = int(rng.integers(10_000))
                if host not in live:
                    alloc.alloc(host)
                    live.add(host)
            alloc.check_invariants()
        assert len(alloc) == len(live)
        assert len(alloc) + alloc.free_slots == alloc.high_water

    def test_clear_callback_runs_on_every_alloc(self):
        alloc = SlotAllocator(4)
        cleared = []
        alloc.register(cleared.append, lambda cap: None)
        alloc.alloc("a")
        alloc.alloc("b")
        alloc.free("a")
        alloc.alloc("c")  # recycles a's slot
        assert cleared == [0, 1, 0]


# -- NeighborColumns ----------------------------------------------------------------
class TestNeighborColumns:
    def _make(self, width=4):
        alloc = SlotAllocator(4)
        cols = NeighborColumns(alloc, max_degree=width)
        return alloc, cols

    def test_sorted_set_semantics(self):
        alloc, cols = self._make()
        s = alloc.alloc("n")
        assert cols.add(s, 30)
        assert cols.add(s, 10)
        assert cols.add(s, 20)
        assert not cols.add(s, 20)  # duplicate
        assert cols.row(s).tolist() == [10, 20, 30]
        assert cols.contains(s, 20)
        assert not cols.contains(s, 15)
        assert cols.discard(s, 20)
        assert not cols.discard(s, 20)
        assert cols.row(s).tolist() == [10, 30]
        assert cols.degree(s) == 2

    def test_widens_past_max_degree(self):
        alloc, cols = self._make(width=2)
        s = alloc.alloc("n")
        for h in range(7):
            cols.add(s, h)
        assert cols.row(s).tolist() == list(range(7))

    def test_rows_are_independent(self):
        alloc, cols = self._make()
        a, b = alloc.alloc("a"), alloc.alloc("b")
        cols.add(a, 1)
        cols.add(b, 2)
        assert cols.row(a).tolist() == [1]
        assert cols.row(b).tolist() == [2]
        assert cols.degrees([a, b]).tolist() == [1, 1]

    def test_row_view_is_readonly(self):
        alloc, cols = self._make()
        s = alloc.alloc("n")
        cols.add(s, 5)
        with pytest.raises(ValueError):
            cols.row(s)[0] = 9


# -- Bitmap2D -----------------------------------------------------------------------
class TestBitmap2D:
    def test_set_clear_test(self):
        alloc = SlotAllocator(4)
        bm = Bitmap2D(alloc, n_bits=130)  # multi-word row
        s = alloc.alloc("n")
        for bit in (0, 63, 64, 129):
            bm.set(s, bit)
        assert bm.bits(s) == [0, 63, 64, 129]
        assert bm.count(s) == 4
        assert bm.test(s, 64)
        bm.clear(s, 64)
        assert not bm.test(s, 64)
        assert bm.bits(s) == [0, 63, 129]

    def test_out_of_range_raises(self):
        alloc = SlotAllocator(4)
        bm = Bitmap2D(alloc, n_bits=8)
        s = alloc.alloc("n")
        with pytest.raises(ConfigurationError):
            bm.set(s, 8)
        with pytest.raises(ConfigurationError):
            bm.test(s, -1)

    def test_batch_counts(self):
        alloc = SlotAllocator(4)
        bm = Bitmap2D(alloc, n_bits=64)
        slots = [alloc.alloc(i) for i in range(3)]
        for i, s in enumerate(slots):
            for bit in range(i + 1):
                bm.set(s, bit)
        assert bm.counts(slots).tolist() == [1, 2, 3]


# -- PeerState ----------------------------------------------------------------------
class TestPeerState:
    def test_membership_and_liveness(self):
        state = PeerState(initial_capacity=2)
        state.admit("a", region=7)
        state.admit("b", region=9)
        assert "a" in state and len(state) == 2
        assert state.status_of("a") == "offline"
        state.set_online("a")
        state.set_crashed("b")
        assert state.is_online("a") and not state.is_online("b")
        assert state.status_of("b") == "crashed"
        assert state.online_count() == 1
        assert state.online_hosts() == ["a"]
        state.evict("a")
        assert "a" not in state

    def test_set_status_many(self):
        state = PeerState()
        for h in range(6):
            state.admit(h)
        state.set_status_many(range(4), ONLINE)
        state.set_status_many([0, 1], CRASHED)
        assert state.online_count() == 2
        assert state.online_hosts() == [2, 3]

    def test_regions_and_sharding(self):
        state = PeerState()
        state.admit("x", region=13)
        assert state.region_of("x") == 13
        assert state.shard_of("x", 4) == 13 % 4
        assert state.shard_of("x", 0) == 0  # degenerate shard count

    def test_named_column_families_are_cached(self):
        state = PeerState()
        assert state.table("nbrs") is state.table("nbrs")
        assert state.bitmap("pieces", 32) is state.bitmap("pieces")

    def test_memory_bytes_counts_all_columns(self):
        state = PeerState(initial_capacity=8)
        state.admit("a")
        base = state.memory_bytes()
        state.table("nbrs", 16)
        state.bitmap("pieces", 256)
        assert state.memory_bytes() > base


# -- ArrayNeighborSet ---------------------------------------------------------------
class TestArrayNeighborSet:
    def _view(self):
        state = PeerState()
        slot = state.admit("me")
        return ArrayNeighborSet(state.table("nbrs", 4), slot)

    def test_set_protocol(self):
        s = self._view()
        assert not s and len(s) == 0
        s.update([5, 3, 9])
        s.add(1)
        s.discard(3)
        s.discard(99)  # no-op
        assert list(s) == [1, 5, 9]  # ascending, deterministic
        assert 5 in s and 3 not in s
        assert "not-an-int" not in s
        assert len(s) == 3 and bool(s)
        assert (s | {2}) == {1, 2, 5, 9}
        assert ({2} | s) == {1, 2, 5, 9}
        assert s == {1, 5, 9}
        s.clear()
        assert len(s) == 0


# -- recycled-slot regressions ------------------------------------------------------
class TestRecycledSlotHygiene:
    def test_recycled_slot_rows_are_clean(self):
        """Evict A, admit B into A's slot: B must not inherit A's
        neighbors, bitmap bits, liveness status, or region."""
        state = PeerState(initial_capacity=4)
        nbrs = state.table("nbrs", 4)
        pieces = state.bitmap("pieces", 64)
        slot_a = state.admit("A", region=42)
        nbrs.add(slot_a, 7)
        nbrs.add(slot_a, 8)
        pieces.set(slot_a, 3)
        state.set_online("A")
        state.evict("A")
        slot_b = state.admit("B")
        assert slot_b == slot_a  # the slot really was recycled
        assert nbrs.row(slot_b).tolist() == []
        assert pieces.bits(slot_b) == []
        assert state.status_of("B") == "offline"
        assert state.region_of("B") == 0

    def test_column_created_after_recycling_starts_clean(self):
        """A table created *after* slots have churned must still present
        clean rows for later recycled allocations."""
        state = PeerState(initial_capacity=4)
        state.admit("A")
        state.evict("A")
        late = state.table("late", 4)
        slot = state.admit("B")
        assert late.row(slot).tolist() == []

    def test_churn_revive_after_eviction_readmits_cleanly(self):
        """ChurnProcess.revive() of a peer that was evicted from a shared
        PeerState (its slot since recycled by another host) must re-admit
        it with a fresh row instead of reading the recycled slot."""
        sim = Simulation()
        state = PeerState(initial_capacity=4)
        joined, left = [], []
        churn = ChurnProcess(
            sim,
            ["p0", "p1"],
            ChurnConfig(mean_session=1e9, mean_offline=1e9),
            joined.append,
            left.append,
            rng=1,
            peerstate=state,
        )
        churn.start(warmup=1.0)
        sim.run(until=2.0)
        assert set(joined) == {"p0", "p1"}

        churn.crash("p0")
        assert state.status_of("p0") == "crashed"
        # the overlay tears p0 down and reuses its slot for a new host
        slot_p0 = state.slot_of("p0")
        state.evict("p0")
        assert state.admit("intruder") == slot_p0
        state.set_online("intruder")

        # revive must not be fooled by the recycled slot's ONLINE status
        churn.revive("p0", delay=1.0)
        assert "p0" in state
        assert state.slot_of("p0") != slot_p0  # fresh slot, not intruder's
        assert state.status_of("p0") == "offline"
        sim.run(until=sim.now + 2.0)
        assert joined.count("p0") == 2  # the revive join fired
        assert state.is_online("p0") and state.is_online("intruder")
        state.slots.check_invariants()

    def test_churn_crash_on_recycled_slot_does_not_touch_new_host(self):
        """crash() of a peer no longer in the shared PeerState must not
        flip the status of whoever now owns the recycled slot."""
        sim = Simulation()
        state = PeerState(initial_capacity=4)
        churn = ChurnProcess(
            sim,
            ["p0"],
            ChurnConfig(mean_session=1e9, mean_offline=1e9),
            lambda p: None,
            lambda p: None,
            rng=1,
            peerstate=state,
        )
        churn.start(warmup=0.0)
        sim.run(until=1.0)
        state.evict("p0")
        slot = state.admit("other")
        state.set_online("other")
        churn.crash("p0")  # p0 gone from the state: must be a no-op
        assert state.is_online("other")
        assert state.host_at(slot) == "other"
