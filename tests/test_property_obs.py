"""Property tests for the metrics primitives (hypothesis).

Invariants:

- histogram bucket counts always sum to the observation count, whatever
  the bucket layout;
- quantile estimates are monotone in q and bounded by the observed
  min/max;
- counter merge is associative and commutative (so per-shard registries
  combine order-independently).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Histogram

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

bucket_bounds = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
    unique=True,
).map(sorted)


@given(values=st.lists(finite_floats, max_size=200), bounds=bucket_bounds)
def test_bucket_counts_sum_to_observation_count(values, bounds):
    hist = Histogram("h_test", buckets=bounds)
    for v in values:
        hist.observe(v)
    counts = hist.bucket_counts()
    assert sum(counts.values()) == len(values) == hist.count()


@given(
    values=st.lists(finite_floats, min_size=1, max_size=200),
    qs=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=20),
    bounds=bucket_bounds,
)
def test_quantiles_monotone_and_bounded(values, qs, bounds):
    hist = Histogram("h_test", buckets=bounds)
    for v in values:
        hist.observe(v)
    lo, hi = min(values), max(values)
    estimates = [hist.quantile(q) for q in sorted(qs)]
    for est in estimates:
        assert lo <= est <= hi
    for a, b in zip(estimates, estimates[1:]):
        assert a <= b
    assert hist.quantile(0.0) == lo
    assert hist.quantile(1.0) == hi


def test_quantile_of_empty_histogram_is_nan():
    hist = Histogram("h_test")
    assert math.isnan(hist.quantile(0.5))


label_values = st.sampled_from(["a", "b", "c", "d"])
increments = st.lists(
    st.tuples(label_values, st.floats(min_value=0, max_value=1e6, allow_nan=False)),
    max_size=50,
)


def _counter(incs) -> Counter:
    c = Counter("c_test", labelnames=("kind",))
    for label, amount in incs:
        c.inc(amount, kind=label)
    return c


def _close(a: Counter, b: Counter) -> bool:
    cells_a, cells_b = a.cells(), b.cells()
    if set(cells_a) != set(cells_b):
        return False
    return all(math.isclose(cells_a[k], cells_b[k]) for k in cells_a)


@settings(max_examples=50)
@given(x=increments, y=increments)
def test_counter_merge_commutative(x, y):
    a, b = _counter(x), _counter(y)
    assert _close(a.merge(b), b.merge(a))


@settings(max_examples=50)
@given(x=increments, y=increments, z=increments)
def test_counter_merge_associative(x, y, z):
    a, b, c = _counter(x), _counter(y), _counter(z)
    assert _close(a.merge(b).merge(c), a.merge(b.merge(c)))


@settings(max_examples=50)
@given(x=increments)
def test_counter_merge_identity(x):
    a = _counter(x)
    empty = Counter("c_test", labelnames=("kind",))
    assert _close(a.merge(empty), a)
    assert _close(empty.merge(a), a)
