"""Unit tests for SwarmPeer choking and piece selection (isolated from
the full swarm loop)."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.overlay.bittorrent import SwarmConfig, SwarmPeer, Torrent


@pytest.fixture()
def hosts(small_underlay):
    return small_underlay.hosts


def _peer(host, torrent, *, is_seed=False, cost_aware=False, rng=1):
    return SwarmPeer(
        host, torrent, SwarmConfig(cost_aware=cost_aware),
        is_seed=is_seed, rng=rng,
    )


def test_config_validation():
    with pytest.raises(OverlayError):
        SwarmConfig(regular_slots=0)
    with pytest.raises(OverlayError):
        SwarmConfig(rechoke_interval_s=0)


def test_rechoke_prefers_best_uploaders(hosts):
    torrent = Torrent(0, n_pieces=8)
    me = _peer(hosts[0], torrent)
    others = {h.host_id: _peer(h, torrent, is_seed=True) for h in hosts[1:7]}
    # received most from hosts[1] and hosts[2]
    me.recv_from[hosts[1].host_id] = 5000.0
    me.recv_from[hosts[2].host_id] = 4000.0
    me.rechoke(others)
    assert hosts[1].host_id in me.unchoked
    assert hosts[2].host_id in me.unchoked
    assert len(me.unchoked) <= 4 + 1  # regular + optimistic


def test_rechoke_empty_interest_clears_unchoked(hosts):
    torrent = Torrent(0, n_pieces=4)
    me = _peer(hosts[0], torrent)
    me.unchoked = {1, 2}
    me.rechoke({})
    assert me.unchoked == set()


def test_rechoke_resets_rate_counters(hosts):
    torrent = Torrent(0, n_pieces=4)
    me = _peer(hosts[0], torrent)
    others = {hosts[1].host_id: _peer(hosts[1], torrent, is_seed=True)}
    me.recv_from[hosts[1].host_id] = 100.0
    me.rechoke(others)
    assert me.recv_from == {}


def test_cost_aware_prefers_same_as(hosts):
    torrent = Torrent(0, n_pieces=8)
    me_host = hosts[0]
    same = next(h for h in hosts[1:] if h.asn == me_host.asn)
    diff = [h for h in hosts[1:] if h.asn != me_host.asn][:6]
    me = _peer(me_host, torrent, cost_aware=True)
    others = {h.host_id: _peer(h, torrent, is_seed=True) for h in [same] + diff}
    # identical rates: the same-AS peer must win a regular slot
    me.rechoke(others)
    assert same.host_id in me.unchoked


def test_pick_piece_rarest_first(hosts):
    torrent = Torrent(0, n_pieces=4)
    me = _peer(hosts[0], torrent, rng=3)
    uploader = _peer(hosts[1], torrent, is_seed=True)
    availability = np.array([5.0, 1.0, 5.0, 5.0])  # piece 1 is rarest
    assert me.pick_piece(uploader, availability, in_flight=set()) == 1


def test_pick_piece_skips_in_flight_and_owned(hosts):
    torrent = Torrent(0, n_pieces=3)
    me = _peer(hosts[0], torrent, rng=3)
    me.bitfield.add(0)
    uploader = _peer(hosts[1], torrent, is_seed=True)
    availability = np.array([1.0, 1.0, 9.0])
    pick = me.pick_piece(uploader, availability, in_flight={1})
    assert pick == 2  # 0 owned, 1 in flight


def test_pick_piece_none_when_nothing_useful(hosts):
    torrent = Torrent(0, n_pieces=2)
    me = _peer(hosts[0], torrent, is_seed=True)  # has everything
    uploader = _peer(hosts[1], torrent, is_seed=True)
    assert me.pick_piece(uploader, np.ones(2), set()) is None


def test_interest(hosts):
    torrent = Torrent(0, n_pieces=2)
    leecher = _peer(hosts[0], torrent)
    seed = _peer(hosts[1], torrent, is_seed=True)
    assert leecher.interested_in(seed)
    assert not seed.interested_in(leecher)


def test_capacity_properties(hosts):
    torrent = Torrent(0, n_pieces=2)
    p = _peer(hosts[0], torrent)
    assert p.up_bps == pytest.approx(
        hosts[0].resources.bandwidth_up_kbps * 1000.0 / 8.0
    )
    assert p.down_bps > 0
