"""Documentation/code consistency guards.

The promise of DESIGN.md/EXPERIMENTS.md is that every benchmark is
indexed and every indexed module exists; these tests keep the docs from
rotting as the code moves.
"""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def test_every_benchmark_is_documented():
    docs = _read("DESIGN.md") + _read("EXPERIMENTS.md") + _read("README.md")
    for bench in (ROOT / "benchmarks").glob("test_*.py"):
        stem = bench.stem
        if stem == "test_microbench_core":
            continue  # perf-regression guards, not paper artefacts
        assert stem in docs, f"benchmark {stem} is not referenced in the docs"


def test_every_documented_module_exists():
    text = _read("docs/paper_map.md") + _read("DESIGN.md")
    for match in set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text)):
        # module path -> file path (module or attribute of a module)
        parts = match.split(".")
        candidates = [
            ROOT / "src" / pathlib.Path(*parts) / "__init__.py",
            (ROOT / "src" / pathlib.Path(*parts)).with_suffix(".py"),
            ROOT / "src" / pathlib.Path(*parts[:-1]) / "__init__.py",
            (ROOT / "src" / pathlib.Path(*parts[:-1])).with_suffix(".py"),
        ]
        assert any(c.exists() for c in candidates), f"{match} referenced in docs but missing"


def test_api_doc_generator_runs():
    out = subprocess.run(
        [sys.executable, str(ROOT / "docs" / "_gen_api.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert out.returncode == 0, out.stderr
    assert "# API reference" in out.stdout
    assert "repro.core.framework" in out.stdout


def test_examples_table_matches_directory():
    readme = _read("README.md")
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in readme, f"{example.name} missing from README"
