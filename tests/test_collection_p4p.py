"""Unit tests for the P4P iTracker."""

import numpy as np
import pytest

from repro.collection import P4PPolicy, P4PService
from repro.errors import CollectionError
from repro.underlay.autonomous_system import LinkType


@pytest.fixture(scope="module")
def p4p(dense_underlay):
    return P4PService(dense_underlay)


def test_policy_validation():
    with pytest.raises(CollectionError):
        P4PPolicy(intra_pid_cost=-1.0)
    with pytest.raises(CollectionError):
        P4PPolicy(peering_link_cost=50.0, transit_link_cost=5.0)


def test_pid_is_asn(dense_underlay, p4p):
    for h in dense_underlay.hosts[:10]:
        assert p4p.my_pid(h.host_id) == h.asn


def test_intra_pid_cheapest(dense_underlay, p4p):
    n = dense_underlay.topology.n_ases
    for pid in range(0, n, 5):
        row = p4p.pdistance_map(pid)
        assert row[pid] == min(row.values())


def test_peering_cheaper_than_transit(dense_underlay):
    u = dense_underlay
    p4p = P4PService(u)
    peer_links = u.topology.peering_links()
    transit_links = u.topology.transit_links()
    if not peer_links:
        pytest.skip("no peering links in this topology")
    pd_peer = np.mean([p4p.pdistance(a, b) for a, b in peer_links])
    pd_transit = np.mean([p4p.pdistance(a, b) for a, b in transit_links])
    assert pd_peer < pd_transit


def test_pdistance_symmetric(dense_underlay, p4p):
    n = dense_underlay.topology.n_ases
    for a in range(0, n, 4):
        for b in range(1, n, 5):
            assert p4p.pdistance(a, b) == p4p.pdistance(b, a)


def test_rank_peers_ascending(dense_underlay, p4p):
    ids = dense_underlay.host_ids()
    ranked = p4p.rank_peers(ids[0], ids[1:25])
    my = p4p.my_pid(ids[0])
    ds = [p4p._pdistance[my, p4p.my_pid(c)] for c in ranked]
    assert ds == sorted(ds)
    assert sorted(ranked) == sorted(ids[1:25])


def test_selection_weights_prefer_cheap(dense_underlay, p4p):
    u = dense_underlay
    ids = u.host_ids()
    querier = ids[0]
    cands = ids[1:40]
    w = p4p.selection_weights(querier, cands)
    assert w.sum() == pytest.approx(1.0)
    my = u.asn_of(querier)
    same = [i for i, c in enumerate(cands) if u.asn_of(c) == my]
    diff = [i for i, c in enumerate(cands) if u.asn_of(c) != my]
    if same and diff:
        assert w[same].mean() > w[diff].mean()
    # no candidate is fully excluded (connectivity)
    assert (w > 0).all()


def test_pick_peers_distinct_and_biased(dense_underlay, p4p):
    u = dense_underlay
    ids = u.host_ids()
    picks = p4p.pick_peers(ids[0], ids[1:], 10, rng=2)
    assert len(picks) == len(set(picks)) == 10
    my = u.asn_of(ids[0])
    same_population = sum(1 for c in ids[1:] if u.asn_of(c) == my) / len(ids[1:])
    # resample many times: the same-PID rate must exceed the base rate
    rng_seeds = range(20)
    rates = []
    for s in rng_seeds:
        ps = p4p.pick_peers(ids[0], ids[1:], 10, rng=s)
        rates.append(sum(1 for c in ps if u.asn_of(c) == my) / 10)
    assert np.mean(rates) > same_population


def test_congestion_surcharge_shifts_costs(dense_underlay):
    u = dense_underlay
    p4p = P4PService(u)
    link = u.topology.transit_links()[0]
    before = p4p.pdistance(link[0], link[1])
    p4p.set_congestion(link, 100.0)
    after = p4p.pdistance(link[0], link[1])
    assert after > before


def test_invalid_softness(dense_underlay, p4p):
    with pytest.raises(CollectionError):
        p4p.selection_weights(dense_underlay.host_ids()[0], [1], softness=0.0)


def test_overhead_accounted(dense_underlay):
    p4p = P4PService(dense_underlay)
    p4p.pdistance(0, 1)
    p4p.pdistance_map(0)
    assert p4p.overhead.queries == 2
    assert p4p.overhead.bytes_on_wire > 96
