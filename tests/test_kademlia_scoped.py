"""Unit/integration tests for geographically scoped hashing (Leopard)."""

import pytest

from repro.errors import OverlayError
from repro.overlay.kademlia import ScopedHashing, ScopedKademlia
from repro.overlay.kademlia.id_space import ID_BITS
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


class TestHashing:
    def test_scope_roundtrip(self):
        h = ScopedHashing(scope_bits=4)
        for region in (0, 3, 15):
            key = h.scoped_key(region, "file.txt")
            assert h.scope_of(key) == region
            nid = h.scoped_node_id(region, rng=1)
            assert h.scope_of(nid) == region

    def test_same_content_different_regions_differ_only_in_scope(self):
        h = ScopedHashing(scope_bits=4)
        k0 = h.scoped_key(0, "x")
        k1 = h.scoped_key(1, "x")
        mask = (1 << h.body_bits) - 1
        assert k0 & mask == k1 & mask
        assert k0 != k1

    def test_region_out_of_range(self):
        h = ScopedHashing(scope_bits=2)
        with pytest.raises(OverlayError):
            h.scoped_key(4, "x")
        with pytest.raises(OverlayError):
            h.scoped_node_id(7)

    def test_invalid_scope_bits(self):
        with pytest.raises(OverlayError):
            ScopedHashing(scope_bits=0)
        with pytest.raises(OverlayError):
            ScopedHashing(scope_bits=20)

    def test_body_bits(self):
        h = ScopedHashing(scope_bits=6)
        assert h.body_bits == ID_BITS - 6
        assert h.n_scopes == 64


class TestScopedKademlia:
    @pytest.fixture(scope="class")
    def dht(self):
        u = Underlay.generate(UnderlayConfig(n_hosts=80, seed=26))
        sim = Simulation()
        bus, acct = u.message_bus(sim)
        net = ScopedKademlia(u, sim, bus, rng=4)
        net.add_all_hosts()
        net.bootstrap_all()
        sim.run(until=120_000)
        return u, sim, net, acct

    def test_node_ids_carry_region(self, dht):
        _u, _sim, net, _a = dht
        for hid, node in net.network.nodes.items():
            assert net.hashing.scope_of(node.node_id) == net.region_of(hid)

    def test_scoped_publish_and_regional_lookup(self, dht):
        u, sim, net, _a = dht
        ids = u.host_ids()
        regions = sorted({net.region_of(h) for h in ids})
        owner = ids[0]
        keys = net.publish_scoped(owner, "popular-video", regions=regions)
        assert len(keys) == len(regions)
        sim.run(until=sim.now + 60_000)
        results = []
        reader = ids[-1]
        key_used = net.lookup_scoped(reader, "popular-video", results)
        assert net.hashing.scope_of(key_used) == net.region_of(reader)
        sim.run(until=sim.now + 60_000)
        assert results and results[0].found_value

    def test_scoped_ids_increase_regional_contacts(self, dht):
        u, _sim, net, _a = dht
        frac = net.same_region_contact_fraction()
        # with 4 populated regions, unscoped tables would hold ~25%
        assert frac > 0.35

    def test_own_region_publish_default(self, dht):
        u, sim, net, _a = dht
        owner = u.host_ids()[5]
        keys = net.publish_scoped(owner, "local-notes")
        assert len(keys) == 1
        assert net.hashing.scope_of(keys[0]) == net.region_of(owner)
