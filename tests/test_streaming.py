"""Unit/integration tests for the P2P-TV streaming swarm."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.overlay.streaming import (
    SchedulerPolicy,
    StreamConfig,
    StreamingSwarm,
)
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture(scope="module")
def underlay():
    return Underlay.generate(UnderlayConfig(n_hosts=80, seed=14))


def _swarm(underlay, policy, bitrate=1200.0, rng=3, n_viewers=60, **cfg):
    ids = underlay.host_ids()
    src = max(underlay.hosts, key=lambda h: h.resources.bandwidth_up_kbps).host_id
    viewers = [i for i in ids if i != src][:n_viewers]
    return StreamingSwarm(
        underlay, src, viewers,
        config=StreamConfig(bitrate_kbps=bitrate, source_copies=3, **cfg),
        policy=policy, rng=rng,
    )


def test_config_validation():
    with pytest.raises(OverlayError):
        StreamConfig(bitrate_kbps=0)
    with pytest.raises(OverlayError):
        StreamConfig(buffer_chunks=0)
    with pytest.raises(OverlayError):
        StreamConfig(window_chunks=2, buffer_chunks=5)
    with pytest.raises(OverlayError):
        StreamConfig(source_copies=0)


def test_chunk_size():
    cfg = StreamConfig(bitrate_kbps=400.0, chunk_ms=1000.0)
    assert cfg.chunk_bytes == pytest.approx(50_000.0)


def test_source_cannot_be_viewer(underlay):
    ids = underlay.host_ids()
    with pytest.raises(OverlayError):
        StreamingSwarm(underlay, ids[0], [ids[0], ids[1]], rng=1)


def test_mesh_is_symmetric(underlay):
    sw = _swarm(underlay, SchedulerPolicy.RANDOM)
    for vid, peer in sw.peers.items():
        for nb in peer.neighbors:
            assert vid in sw.peers[nb].neighbors


def test_source_budget_respected(underlay):
    sw = _swarm(underlay, SchedulerPolicy.RANDOM)
    sw.run(50)
    assert sw.source_chunks_served <= 3 * 50


def test_peers_only_hold_produced_chunks(underlay):
    sw = _swarm(underlay, SchedulerPolicy.BANDWIDTH_AWARE)
    sw.run(40)
    for peer in sw.peers.values():
        assert all(0 <= c <= sw.live_edge for c in peer.chunks)


def test_playback_accounting(underlay):
    sw = _swarm(underlay, SchedulerPolicy.BANDWIDTH_AWARE)
    rep = sw.run(80)
    for peer in sw.peers.values():
        if peer.started:
            assert peer.played + peer.missed == peer.playhead + 1
    assert 0.0 <= rep.mean_continuity <= 1.0
    assert rep.chunks_produced == 80


def test_overprovisioned_swarm_is_perfect(underlay):
    rep = _swarm(underlay, SchedulerPolicy.RANDOM, bitrate=300.0).run(80)
    assert rep.mean_continuity > 0.99


def test_bandwidth_aware_beats_random_under_tight_capacity(underlay):
    random_rep = _swarm(underlay, SchedulerPolicy.RANDOM, bitrate=1800.0).run(120)
    aware_rep = _swarm(
        underlay, SchedulerPolicy.BANDWIDTH_AWARE, bitrate=1800.0
    ).run(120)
    assert aware_rep.mean_continuity > random_rep.mean_continuity + 0.1
    assert aware_rep.mean_startup_intervals <= random_rep.mean_startup_intervals
    # both use the same source budget: the gain is pure scheduling
    assert aware_rep.source_chunks_served == random_rep.source_chunks_served


def test_deterministic_given_seed(underlay):
    a = _swarm(underlay, SchedulerPolicy.RANDOM, rng=9).run(40)
    b = _swarm(underlay, SchedulerPolicy.RANDOM, rng=9).run(40)
    assert a.mean_continuity == b.mean_continuity
    assert a.source_chunks_served == b.source_chunks_served
