"""Unit tests for GNP and landmark binning."""

import numpy as np
import pytest

from repro.coords import GNPConfig, GNPSystem, LandmarkBinning, evaluate_embedding
from repro.errors import ConfigurationError, CoordinateError


def _euclidean_matrix(n, dim, seed):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 100, size=(n, dim))
    diff = pts[:, None, :] - pts[None, :, :]
    mat = np.sqrt((diff**2).sum(-1))
    np.fill_diagonal(mat, 0.0)
    return pts, mat


def test_config_validation():
    with pytest.raises(ConfigurationError):
        GNPConfig(dim=0)
    with pytest.raises(ConfigurationError):
        GNPConfig(restarts=0)


def test_landmark_embedding_recovers_euclidean_distances():
    _pts, mat = _euclidean_matrix(7, 3, seed=1)
    gnp = GNPSystem(mat, GNPConfig(dim=3, restarts=3), seed=2)
    rep = evaluate_embedding(gnp.estimated_matrix(), mat)
    assert rep.median_relative_error < 0.05


def test_host_coordinate_close_to_landmark_consistency():
    pts, mat = _euclidean_matrix(8, 3, seed=3)
    gnp = GNPSystem(mat[:6, :6], GNPConfig(dim=3, restarts=3), seed=4)
    # embed host 7 using its true distances to the six landmarks
    host_coord = gnp.host_coordinate(mat[7, :6])
    pred = np.linalg.norm(gnp.landmark_coords - host_coord[None, :], axis=1)
    rel = np.abs(pred - mat[7, :6]) / mat[7, :6]
    assert np.median(rel) < 0.15


def test_needs_enough_landmarks():
    _p, mat = _euclidean_matrix(3, 2, seed=5)
    with pytest.raises(CoordinateError):
        GNPSystem(mat, GNPConfig(dim=3))


def test_host_coordinate_validation():
    _p, mat = _euclidean_matrix(6, 2, seed=6)
    gnp = GNPSystem(mat, GNPConfig(dim=2), seed=1)
    with pytest.raises(CoordinateError):
        gnp.host_coordinate([1.0, 2.0])
    with pytest.raises(CoordinateError):
        gnp.host_coordinate([-1.0] * 6)


class TestBinning:
    def test_bin_is_order_plus_levels(self):
        b = LandmarkBinning(3, level_thresholds_ms=(100.0, 200.0))
        assert b.bin_of([50.0, 150.0, 250.0]) == (0, 1, 2, 0, 1, 2)

    def test_same_bin_for_similar_vectors(self):
        b = LandmarkBinning(3)
        assert b.same_bin([10, 20, 30], [15, 25, 35])
        assert not b.same_bin([10, 20, 30], [30, 20, 10])

    def test_similarity_graded(self):
        b = LandmarkBinning(4)
        s_close = b.bin_similarity([1, 2, 3, 4], [1.1, 2.2, 3.3, 4.4])
        s_far = b.bin_similarity([1, 2, 3, 4], [400, 300, 200, 100])
        assert s_close > s_far

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LandmarkBinning(0)
        b = LandmarkBinning(2)
        with pytest.raises(CoordinateError):
            b.bin_of([1.0])

    def test_binning_correlates_with_as_on_underlay(self, dense_underlay):
        u = dense_underlay
        rtt = u.rtt_matrix()
        landmarks = list(range(6))
        b = LandmarkBinning(6)
        hosts = u.hosts[6:46]
        sims_same, sims_diff = [], []
        for i, ha in enumerate(hosts):
            for hb in hosts[i + 1 :]:
                ia, ib = u.hosts.index(ha), u.hosts.index(hb)
                s = b.bin_similarity(rtt[ia, landmarks], rtt[ib, landmarks])
                (sims_same if ha.asn == hb.asn else sims_diff).append(s)
        assert np.mean(sims_same) > np.mean(sims_diff)
