"""Unit tests for locality and resilience metrics."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    articulation_point_count,
    as_modularity,
    intra_as_edge_fraction,
    inter_as_edge_count,
    is_connected,
    largest_component_fraction,
    largest_component_fraction_under_removal,
    locality_summary,
    min_inter_as_edges,
    partition_risk,
    resilience_summary,
)


def _clustered_graph():
    """Two 5-cliques (AS 0 and AS 1) joined by one edge."""
    g = nx.Graph()
    asn = {}
    for a in range(5):
        asn[a] = 0
    for b in range(5, 10):
        asn[b] = 1
    g.add_edges_from((i, j) for i in range(5) for j in range(i + 1, 5))
    g.add_edges_from((i, j) for i in range(5, 10) for j in range(i + 1, 10))
    g.add_edge(0, 5)
    return g, (lambda n: asn[n])


def _random_graph():
    g = nx.gnm_random_graph(10, 21, seed=1)
    return g, (lambda n: n % 2)


def test_intra_fraction_extremes():
    g, asn_of = _clustered_graph()
    frac = intra_as_edge_fraction(g, asn_of)
    assert frac == pytest.approx(20 / 21)
    assert inter_as_edge_count(g, asn_of) == 1
    assert min_inter_as_edges(g, asn_of) == 1


def test_empty_graph_fraction_zero():
    assert intra_as_edge_fraction(nx.Graph(), lambda n: 0) == 0.0


def test_modularity_higher_for_clustered():
    gc, asn_c = _clustered_graph()
    gr, asn_r = _random_graph()
    assert as_modularity(gc, asn_c) > as_modularity(gr, asn_r)


def test_modularity_rejects_edgeless():
    g = nx.Graph()
    g.add_nodes_from([1, 2])
    with pytest.raises(ReproError):
        as_modularity(g, lambda n: 0)


def test_locality_summary_keys():
    g, asn_of = _clustered_graph()
    row = locality_summary(g, asn_of)
    assert row["connected"] == 1.0
    assert row["nodes"] == 10
    assert row["inter_as_edges"] == 1


def test_largest_component_fraction():
    g = nx.Graph()
    g.add_edges_from([(1, 2), (2, 3), (4, 5)])
    assert largest_component_fraction(g) == pytest.approx(3 / 5)
    with pytest.raises(ReproError):
        largest_component_fraction(nx.Graph())


def test_removal_sweep_monotone_trend():
    g = nx.gnm_random_graph(60, 240, seed=2)
    rows = largest_component_fraction_under_removal(
        g, [0.0, 0.3, 0.6], trials=5, rng=1
    )
    assert rows[0]["largest_component"] == 1.0
    assert rows[0]["largest_component"] >= rows[2]["largest_component"] - 0.05


def test_removal_validates_fraction():
    g = nx.path_graph(5)
    with pytest.raises(ReproError):
        largest_component_fraction_under_removal(g, [1.0])


def test_partition_risk_clustered_vs_dense():
    gc, asn_c = _clustered_graph()
    dense = nx.complete_graph(10)
    risk_clustered = partition_risk(gc, asn_c, 0.2, trials=40, rng=3)
    risk_dense = partition_risk(dense, lambda n: n % 2, 0.2, trials=40, rng=3)
    assert risk_clustered >= risk_dense


def test_articulation_points():
    g, _ = _clustered_graph()
    # nodes 0 and 5 bridge the cliques
    assert articulation_point_count(g) == 2
    assert articulation_point_count(nx.complete_graph(5)) == 0


def test_is_connected_empty():
    assert is_connected(nx.Graph())


def test_resilience_summary_keys():
    g, asn_of = _clustered_graph()
    row = resilience_summary(g, asn_of, removal_fraction=0.2, rng=1)
    assert set(row) == {"largest_component", "articulation_points", "partition_risk"}
