"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, _parse_overrides, _parse_value, main


def test_parse_value_types():
    assert _parse_value("3") == 3
    assert _parse_value("3.5") == 3.5
    assert _parse_value("true") is True
    assert _parse_value("hello") == "hello"


def test_parse_overrides():
    assert _parse_overrides(["a=1", "b=x"]) == {"a": 1, "b": "x"}
    with pytest.raises(SystemExit):
        _parse_overrides(["broken"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_run_single(capsys):
    assert main(["run", "FIG2"]) == 0
    out = capsys.readouterr().out
    assert "FIG2" in out
    assert "transit_per_mbps_usd" in out


def test_run_case_insensitive(capsys):
    assert main(["run", "fig2b"]) == 0
    assert "monthly_bill_usd" in capsys.readouterr().out


def test_run_with_override(capsys):
    assert main(["run", "FIG2b", "--arg", "p2p_traffic_mbps=100"]) == 0
    assert "100" in capsys.readouterr().out


def test_unknown_id_rejected():
    with pytest.raises(SystemExit):
        main(["run", "FIG99"])


def test_bad_override_kw_rejected():
    with pytest.raises(SystemExit):
        main(["run", "FIG2", "--arg", "bogus_kw=1"])
