"""Integration tests: Kademlia maintenance (refresh/republish) under churn."""

import pytest

from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def _build(seed=61, n_hosts=50, **cfg):
    u = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    net = KademliaNetwork(
        u, sim, bus, config=KademliaConfig(rpc_timeout_ms=800.0, **cfg), rng=seed
    )
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=120_000)
    return u, sim, net


def test_refresh_buckets_starts_lookups():
    _u, sim, net = _build()
    node = next(iter(net.nodes.values()))
    started = node.refresh_buckets(rng=net._rng)
    assert started >= 0
    sim.run(until=sim.now + 30_000)  # refresh lookups complete


def test_refresh_repairs_tables_after_churn():
    _u, sim, net = _build()
    ids = list(net.nodes)
    # 30% of nodes vanish silently
    dead = set(ids[: len(ids) // 3])
    for hid in dead:
        net.nodes[hid].go_offline()
    # lookups discover the dead (timeouts purge them); then refresh heals
    net.run_value_workload(10, 30, settle_ms=90_000)
    sizes_before = {
        hid: n.routing_table.size()
        for hid, n in net.nodes.items()
        if hid not in dead
    }
    net.start_maintenance(refresh_period_ms=30_000.0)
    sim.run(until=sim.now + 150_000)
    net.stop_maintenance()
    # tables of the survivors did not wither away
    alive = [n for hid, n in net.nodes.items() if hid not in dead]
    assert all(n.routing_table.size() >= 3 for n in alive)
    # and lookups still succeed at high rate
    stats = net.run_value_workload(10, 40, settle_ms=120_000)
    assert stats.success_rate > 0.85


def test_republish_restores_replicas_after_holder_loss():
    _u, sim, net = _build(seed=62)
    ids = list(net.nodes)
    key = net.publish(ids[0], "precious")
    sim.run(until=sim.now + 60_000)
    holders = [hid for hid, n in net.nodes.items() if key in n.storage]
    assert holders
    # half the holders churn out
    for hid in holders[: max(len(holders) // 2, 1)]:
        net.nodes[hid].go_offline()
        net.nodes[hid].storage.clear()
    survivors = net.republish(key)
    assert survivors >= 0
    sim.run(until=sim.now + 90_000)
    results = []
    net.lookup_value(ids[-1], key, results)
    sim.run(until=sim.now + 90_000)
    assert results and results[0].found_value


def test_stop_maintenance_halts_refreshes():
    _u, sim, net = _build(seed=63, n_hosts=30)
    net.start_maintenance(refresh_period_ms=10_000.0)
    sim.run(until=sim.now + 25_000)
    net.stop_maintenance()
    pending_after_stop = sim.pending()
    sim.run(until=sim.now + 100_000)
    # no runaway event production once maintenance stops
    assert sim.pending() <= pending_after_stop
