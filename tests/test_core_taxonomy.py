"""Unit tests for the Table 1 registry."""

import importlib

import pytest

from repro.collection import UnderlayInfoType
from repro.core import (
    TABLE1_SYSTEMS,
    implemented_modules,
    representatives,
    systems_by_type,
)


def test_registry_covers_all_info_types():
    types = {s.info_type for s in TABLE1_SYSTEMS}
    assert types == set(UnderlayInfoType)


def test_paper_row_counts():
    # Table 1 lists 9+ ISP-location, 9 latency, 2 geolocation, 2 resources
    assert len(systems_by_type(UnderlayInfoType.ISP_LOCATION)) >= 9
    assert len(systems_by_type(UnderlayInfoType.LATENCY)) >= 8
    assert len(systems_by_type(UnderlayInfoType.GEOLOCATION)) == 2
    assert len(systems_by_type(UnderlayInfoType.PEER_RESOURCES)) == 3


def test_every_implemented_module_importable():
    for module in implemented_modules():
        importlib.import_module(module)


def test_every_entry_has_reference_and_technique():
    for s in TABLE1_SYSTEMS:
        assert s.reference.startswith("[")
        assert s.technique
        assert s.implemented_by.startswith("repro.")


def test_representatives_cover_all_types():
    reps = representatives()
    assert {r.info_type for r in reps} == set(UnderlayInfoType)
    assert len(reps) >= 6


def test_unique_names():
    names = [s.name for s in TABLE1_SYSTEMS]
    assert len(names) == len(set(names))
