"""Integration tests for the Plethora-style two-level DHT."""

import pytest

from repro.errors import OverlayError
from repro.overlay import HierarchicalDHT
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture(scope="module")
def hdht():
    u = Underlay.generate(UnderlayConfig(n_hosts=80, seed=9))
    sim = Simulation()
    h = HierarchicalDHT(u, sim, rng=2)
    h.bootstrap_all()
    sim.run(until=120_000)
    return u, sim, h


def _settle(sim, ms=60_000):
    sim.run(until=sim.now + ms)


def test_every_host_in_global_and_its_local_plane(hdht):
    u, _sim, h = hdht
    assert set(h.global_dht.nodes) == set(u.host_ids())
    for region, dht in h.local_dht.items():
        for hid in dht.nodes:
            assert h.region_of(hid) == region


def test_local_first_resolution_for_regional_content(hdht):
    u, sim, h = hdht
    ids = u.host_ids()
    owner = ids[0]
    h.publish(owner, "regional-doc")
    _settle(sim)
    reader = next(
        x for x in ids[1:] if h.region_of(x) == h.region_of(owner)
    )
    rec = h.lookup(reader, "regional-doc")
    _settle(sim)
    assert rec.done and rec.values
    assert rec.resolved_locally is True
    assert owner in rec.values


def test_global_fallback_and_cache_promotion(hdht):
    u, sim, h = hdht
    ids = u.host_ids()
    owner = ids[0]
    h.publish(owner, "remote-doc")
    _settle(sim)
    far = next(x for x in ids if h.region_of(x) != h.region_of(owner))
    first = h.lookup(far, "remote-doc")
    _settle(sim)
    assert first.done and first.values
    assert first.resolved_locally is False
    # a second reader in the same far region now resolves locally
    far2 = next(
        x
        for x in ids
        if h.region_of(x) == h.region_of(far) and x != far
    )
    second = h.lookup(far2, "remote-doc")
    _settle(sim)
    assert second.done and second.values
    assert second.resolved_locally is True


def test_missing_content_fails_cleanly(hdht):
    u, sim, h = hdht
    rec = h.lookup(u.host_ids()[3], "never-published")
    _settle(sim)
    assert rec.done
    assert not rec.values


def test_plane_traffic_accounted(hdht):
    _u, _sim, h = hdht
    t = h.plane_traffic()
    assert t["global_bytes"] > 0
    assert t["local_bytes"] > 0
    assert h.success_rate() > 0.6


def test_needs_multiple_regions():
    u = Underlay.generate(UnderlayConfig(n_hosts=20, seed=1))
    sim = Simulation()
    with pytest.raises(OverlayError):
        HierarchicalDHT(u, sim, region_of=lambda hid: 0)
