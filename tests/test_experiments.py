"""Integration tests: every experiment runs (scaled down) and shows the
paper's qualitative shape.  The full-size runs live in benchmarks/."""

import numpy as np
import pytest

from repro.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4_embedding,
    run_fig4_examples,
    run_fig6,
    run_locality_savings,
    run_locality_swarm,
    run_table1,
    run_testlab_arm,
)
from repro.experiments import testlab_topology as make_testlab_topology
from repro.overlay.gnutella import NeighborPolicy
from repro.underlay.routing import ASRouting


class TestFig1:
    def test_structure_holds_across_sizes(self):
        res = run_fig1(sizes=[(3, 5, 10), (4, 8, 20)], seed=2)
        for row in res.rows:
            assert row["money_flows_up"]
            assert row["peering_same_tier"]
            assert row["all_have_providers"]
            assert 1.0 <= row["mean_stub_hops"] <= 6.0


class TestFig2:
    def test_cost_relations_shape(self):
        res = run_fig2()
        per_mbps_transit = res.column("transit_per_mbps_usd")
        per_mbps_peering = res.column("peering_per_mbps_usd")
        # transit unit cost constant; peering unit cost strictly decreasing
        assert len(set(round(v, 9) for v in per_mbps_transit)) == 1
        assert all(a > b for a, b in zip(per_mbps_peering, per_mbps_peering[1:]))
        totals = res.column("transit_total_usd")
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_locality_savings_monotone(self):
        res = run_locality_savings()
        bills = res.column("monthly_bill_usd")
        assert all(a >= b for a, b in zip(bills, bills[1:]))


class TestFig3:
    def test_all_taxonomy_leaves_measured(self):
        res = run_fig3(n_hosts=40, seed=2)
        methods = set(res.column("method"))
        assert len(methods) == 8
        for row in res.rows:
            assert row["overhead_bytes"] >= 0.0
        # GPS is the most accurate geolocation source but covers fewer peers
        gps = res.row_by("method", "gps")
        ipl = res.row_by("method", "ip-to-location-mapping")
        assert gps["overhead_bytes"] <= ipl["overhead_bytes"]
        assert gps["accuracy"] >= ipl["accuracy"]
        assert gps["coverage"] <= ipl["coverage"]


class TestFig4:
    def test_paper_examples_match_to_printed_precision(self):
        res = run_fig4_examples()
        for row in res.rows:
            # the paper prints (truncates) to 2-4 decimals
            assert row["measured"] == pytest.approx(row["paper"], abs=1e-2), row

    def test_embedding_comparison(self):
        res = run_fig4_embedding(n_hosts=40, n_beacons=10, seed=4)
        systems = dict(zip(res.column("system"), res.rows))
        assert set(systems) == {"ICS", "Vivaldi(3D+h)", "GNP"}
        for row in res.rows:
            assert row["median_rel_err"] < 0.8
            assert row["stretch"] >= 1.0
        # Vivaldi uses far more probes but achieves the lowest error
        viv = systems["Vivaldi(3D+h)"]
        ics = systems["ICS"]
        assert viv["median_rel_err"] < ics["median_rel_err"]


class TestFig6:
    def test_biased_clusters_and_stays_connected(self):
        res = run_fig6(n_hosts=80, seed=3)
        uni = res.row_by("arm", "uniform_random")
        bia = res.row_by("arm", "biased")
        assert bia["intra_as_edge_fraction"] > 3 * uni["intra_as_edge_fraction"]
        assert bia["as_modularity"] > uni["as_modularity"] + 0.2
        assert bia["connected"] == 1.0
        assert bia["inter_as_edges"] >= bia["min_inter_as_edges"]

    def test_external_floor_ablation_reduces_partition_risk(self):
        res = run_fig6(n_hosts=80, seed=3)
        floor = res.row_by("arm", "biased")
        no_floor = res.row_by("arm", "biased_no_floor")
        assert floor["intra_as_edge_fraction"] <= no_floor["intra_as_edge_fraction"]


class TestLocalitySwarm:
    def test_bias_shifts_bills_without_breaking_downloads(self):
        res = run_locality_swarm(
            n_hosts=300, seed=11, biases=(0.0, 0.8), n_pieces=16
        )
        base = res.row_by("bias", 0.0)
        biased = res.row_by("bias", 0.8)
        assert base["completion_rate"] == 1.0
        assert biased["completion_rate"] == 1.0
        # ISP side: locality moves bytes off transit and shrinks bills
        assert biased["transit_fraction"] < 0.6 * base["transit_fraction"]
        assert biased["stub_transit_bill_usd"] < base["stub_transit_bill_usd"]
        # user side: the win-win regime — download times hold
        assert (
            biased["median_download_s"] < 1.3 * base["median_download_s"]
        )


class TestTestlab:
    @pytest.mark.parametrize("kind", ["ring", "star", "tree", "mesh"])
    def test_topologies_route_fully(self, kind):
        topo = make_testlab_topology(kind)
        routing = ASRouting(topo)
        mat = routing.hop_matrix()
        assert mat.shape == (5, 5)
        assert (mat[~np.eye(5, dtype=bool)] >= 1).all()

    def test_oracle_reduces_queries_without_breaking_search(self):
        unb = run_testlab_arm("mesh", "uniform", NeighborPolicy.UNBIASED, seed=5)
        bia = run_testlab_arm("mesh", "uniform", NeighborPolicy.BIASED, seed=5)
        assert unb["success"] == 1.0
        assert bia["success"] == 1.0
        assert bia["query"] <= 1.05 * unb["query"]
        assert bia["intra_as_links"] > unb["intra_as_links"]

    def test_variable_scheme_shares_270_files(self):
        arm = run_testlab_arm("star", "variable", NeighborPolicy.UNBIASED, seed=5)
        assert arm["success"] == 1.0

    def test_unknown_topology_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_testlab_topology("torus")


class TestTable1:
    def test_representative_metrics_sensible(self):
        res = run_table1(n_hosts=50, seed=6)
        rows = {r["system"]: r for r in res.rows}
        assert rows["BNS [3]"]["value"] > 0.1          # transit cut
        assert rows["Ono [5]"]["value"] > 0.2          # similarity gap
        assert rows["Vivaldi [7]"]["value"] < 0.4      # embedding error
        assert rows["SkyEye.KOM [11]"]["value"] >= 0.9  # top-k recall
        assert rows["Globase.KOM [19]"]["value"] < 0.8  # coherence ratio
        assert rows["Proximity in Kademlia [17][4]"]["value"] > 0.0
