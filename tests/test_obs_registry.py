"""Unit tests for repro.obs: registry, metric types, exports."""

import json
import math

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import Counter, Gauge, Histogram, MetricRegistry


# -- counters ------------------------------------------------------------------


def test_counter_basics():
    c = Counter("msgs_total", labelnames=("kind",))
    c.inc(kind="PING")
    c.inc(2, kind="PING")
    c.inc(5, kind="PONG")
    assert c.value(kind="PING") == 3
    assert c.value(kind="PONG") == 5
    assert c.value(kind="QUERY") == 0
    assert c.total() == 8


def test_counter_rejects_negative_and_bad_labels():
    c = Counter("msgs_total", labelnames=("kind",))
    with pytest.raises(ObservabilityError):
        c.inc(-1, kind="PING")
    with pytest.raises(ObservabilityError):
        c.inc(1)  # missing label
    with pytest.raises(ObservabilityError):
        c.inc(1, kind="PING", extra="x")


def test_counter_merge_requires_compatibility():
    a = Counter("a_total")
    b = Counter("b_total")
    with pytest.raises(ObservabilityError):
        a.merge(b)


def test_invalid_metric_names_rejected():
    for bad in ("Total", "1abc", "with-dash", "with space", ""):
        with pytest.raises(ObservabilityError):
            Counter(bad)


# -- gauges --------------------------------------------------------------------


def test_gauge_set_inc_dec():
    g = Gauge("pending")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value() == 12


# -- histograms ----------------------------------------------------------------


def test_histogram_buckets_and_stats():
    h = Histogram("hops", buckets=(1, 2, 4, 8))
    for v in (0, 1, 1, 3, 5, 100):
        h.observe(v)
    counts = h.bucket_counts()
    assert counts[1.0] == 3  # 0, 1, 1
    assert counts[2.0] == 0
    assert counts[4.0] == 1  # 3
    assert counts[8.0] == 1  # 5
    assert counts[math.inf] == 1  # 100
    assert h.count() == 6
    assert h.sum() == 110
    assert h.min_observed() == 0
    assert h.max_observed() == 100
    assert h.mean() == pytest.approx(110 / 6)


def test_histogram_quantiles_reasonable():
    h = Histogram("lat", buckets=(10, 20, 50, 100))
    for v in range(1, 101):  # 1..100 uniform
        h.observe(v)
    assert h.quantile(0.0) == 1
    assert h.quantile(1.0) == 100
    assert h.quantile(0.5) == pytest.approx(50, abs=15)
    assert h.quantile(0.9) == pytest.approx(90, abs=15)


def test_histogram_bisect_matches_linear_scan():
    # regression guard for the bisect rewrite of observe(): bucket
    # assignment must match the linear reference exactly, including
    # values sitting on bounds, below the first, above the last, and inf
    buckets = (1.0, 2.5, 5.0, 10.0, 100.0)
    probes = [
        0.0, 0.5, 1.0, 1.0000001, 2.5, 2.6, 5.0, 9.99, 10.0, 10.01,
        99.9, 100.0, 100.1, 1e9, math.inf, -3.0,
    ]

    def linear_index(value):
        for i, bound in enumerate(buckets):
            if value <= bound:
                return i
        return len(buckets)

    for v in probes:
        h = Histogram("h", buckets=buckets)
        h.observe(v)
        counts = list(h.bucket_counts().values())
        assert counts.index(1) == linear_index(v), f"value {v} misbucketed"


def test_slo_buckets_resolve_beyond_default_ceiling():
    from repro.obs import SLO_LATENCY_BUCKETS_MS
    from repro.obs.registry import DEFAULT_BUCKETS

    assert max(SLO_LATENCY_BUCKETS_MS) > max(DEFAULT_BUCKETS)
    assert list(SLO_LATENCY_BUCKETS_MS) == sorted(SLO_LATENCY_BUCKETS_MS)
    h = Histogram("lat", buckets=SLO_LATENCY_BUCKETS_MS)
    h.observe(30_000.0)  # would be +Inf under DEFAULT_BUCKETS
    assert h.bucket_counts()[40_000.0] == 1


def test_histogram_rejects_bad_buckets_and_nan():
    with pytest.raises(ObservabilityError):
        Histogram("h", buckets=())
    with pytest.raises(ObservabilityError):
        Histogram("h", buckets=(1, 1, 2))
    h = Histogram("h", buckets=(1,))
    with pytest.raises(ObservabilityError):
        h.observe(float("nan"))
    with pytest.raises(ObservabilityError):
        h.quantile(1.5)


# -- registry ------------------------------------------------------------------


def test_registry_get_or_create_returns_same_object():
    reg = MetricRegistry()
    a = reg.counter("x_total", labelnames=("kind",))
    b = reg.counter("x_total", labelnames=("kind",))
    assert a is b
    assert len(reg) == 1


def test_registry_rejects_type_or_label_mismatch():
    reg = MetricRegistry()
    reg.counter("x_total")
    with pytest.raises(ObservabilityError):
        reg.gauge("x_total")
    with pytest.raises(ObservabilityError):
        reg.counter("x_total", labelnames=("kind",))


def test_registry_reset_keeps_registrations():
    reg = MetricRegistry()
    c = reg.counter("x_total")
    c.inc(5)
    reg.reset()
    assert reg.counter("x_total") is c
    assert c.total() == 0


def test_default_registry_reset():
    obs.reset_default_registry()
    obs.default_registry().counter("y_total").inc()
    assert obs.default_registry().get("y_total").total() == 1
    obs.reset_default_registry()
    assert obs.default_registry().get("y_total") is None


# -- exports -------------------------------------------------------------------


def _sample_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("msgs_total", "messages", ("kind",)).inc(3, kind="PING")
    reg.gauge("pending").set(7)
    h = reg.histogram("hops", "hop counts", buckets=(1, 2, 4))
    h.observe(1)
    h.observe(3)
    return reg


def test_registry_to_dict_and_json_roundtrip():
    reg = _sample_registry()
    snap = obs.registry_to_dict(reg)
    assert snap["msgs_total"]["values"]["kind=PING"] == 3
    assert snap["pending"]["values"][""] == 7
    hist = snap["hops"]["values"][""]
    assert hist["count"] == 2
    assert hist["buckets"]["+Inf"] == 0
    # JSON-safe end to end
    assert json.loads(obs.to_json(reg))["hops"]["values"][""]["sum"] == 4


def test_prometheus_text_format():
    text = obs.to_prometheus_text(_sample_registry())
    assert '# TYPE msgs_total counter' in text
    assert 'msgs_total{kind="PING"} 3' in text
    assert "pending 7" in text
    assert 'hops_bucket{le="+Inf"} 2' in text  # cumulative
    assert "hops_count 2" in text


def test_observe_scope_activates_and_deactivates():
    assert obs.active_registry() is None
    with obs.observe() as session:
        assert obs.active_registry() is session.registry
        assert obs.active_tracer() is session.tracer
        with obs.observe() as inner:  # nesting: innermost wins
            assert obs.active_registry() is inner.registry
        assert obs.active_registry() is session.registry
    assert obs.active_registry() is None
    assert obs.active_tracer() is None


# -- bound label cells (PR 9 hot-path views) ----------------------------------


def test_counter_labelled_cell_equivalent_to_inc():
    a = Counter("a_total", labelnames=("kind",))
    b = Counter("b_total", labelnames=("kind",))
    cell = a.labelled(kind="PING")
    cell.inc()
    cell.inc(2.5)
    b.inc(kind="PING")
    b.inc(2.5, kind="PING")
    assert cell.value() == a.value(kind="PING") == b.value(kind="PING") == 3.5
    with pytest.raises(ObservabilityError):
        cell.inc(-1)


def test_counter_labelled_validates_at_bind_time():
    c = Counter("c_total", labelnames=("kind",))
    with pytest.raises(ObservabilityError):
        c.labelled(nope="x")  # wrong labelname fails at bind, not at inc


def test_counter_cell_survives_clear():
    c = Counter("c_total", labelnames=("kind",))
    cell = c.labelled(kind="PING")
    cell.inc(5)
    c.clear()
    assert cell.value() == 0.0
    cell.inc(2)  # rebinds into the live cells dict, not a stale one
    assert c.value(kind="PING") == 2.0


def test_histogram_labelled_cell_equivalent_to_observe():
    reg = MetricRegistry()
    h1 = reg.histogram("h1", "direct", buckets=(1, 2, 4), labelnames=("op",))
    h2 = reg.histogram("h2", "cell", buckets=(1, 2, 4), labelnames=("op",))
    cell = h2.labelled(op="get")
    for v in (0.5, 1.5, 3.0, 9.0):
        h1.observe(v, op="get")
        cell.observe(v)
    snap = obs.registry_to_dict(reg)
    assert snap["h1"]["values"]["op=get"] == snap["h2"]["values"]["op=get"]
    with pytest.raises(ObservabilityError):
        cell.observe(float("nan"))
