"""Unit tests for valley-free routing."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.underlay import (
    ASRouting,
    AutonomousSystem,
    LinkType,
    Position,
    Tier,
    InternetTopology,
    TopologyConfig,
    generate_topology,
)


@pytest.fixture(scope="module")
def routed():
    topo = generate_topology(TopologyConfig(seed=9))
    return topo, ASRouting(topo)


def _is_valley_free(topo, path):
    """Check the up*/peer?/down* structure of a path."""
    phase = "up"
    for a, b in zip(path, path[1:]):
        asys = topo.asys(a)
        if b in asys.providers:
            step = "up"
        elif b in asys.peers:
            step = "peer"
        elif b in asys.customers:
            step = "down"
        else:
            return False
        if phase == "up":
            phase = step
        elif phase == "peer":
            if step != "down":
                return False
            phase = "down"
        elif phase == "down" and step != "down":
            return False
    return True


def test_all_stub_pairs_routable_and_valley_free(routed):
    topo, routing = routed
    stubs = topo.stub_asns()
    for a in stubs[:8]:
        for b in stubs[-8:]:
            path = routing.path(a, b)
            assert path[0] == a and path[-1] == b
            assert _is_valley_free(topo, path), path


def test_same_as_path(routed):
    _topo, routing = routed
    assert routing.path(3, 3) == [3]
    assert routing.hops(3, 3) == 0


def test_hops_equals_path_length(routed):
    topo, routing = routed
    stubs = topo.stub_asns()
    for a, b in zip(stubs[:5], stubs[5:10]):
        assert routing.hops(a, b) == len(routing.path(a, b)) - 1


def test_path_links_classification(routed):
    topo, routing = routed
    stubs = topo.stub_asns()
    links = routing.path_links(stubs[0], stubs[-1])
    for a, b, link_type in links:
        assert topo.link_type(a, b) is link_type


def test_hop_matrix_symmetric_nonnegative(routed):
    _topo, routing = routed
    mat = routing.hop_matrix()
    assert (mat >= 0).all()
    assert (mat == mat.T).all()
    assert (np.diag(mat) == 0).all()


def test_direct_neighbors_one_hop(routed):
    topo, routing = routed
    p, c = topo.transit_links()[0]
    assert routing.hops(p, c) == 1
    a, b = topo.peering_links()[0]
    assert routing.hops(a, b) == 1


def test_unroutable_raises():
    # two isolated... cannot build disconnected InternetTopology (validated),
    # so test peer-only 3-chain: A-peer-B-peer-C has no valley-free A->C
    a = AutonomousSystem(0, Tier.TIER1, Position(0, 0))
    b = AutonomousSystem(1, Tier.TIER1, Position(1, 0))
    c = AutonomousSystem(2, Tier.TIER1, Position(2, 0))
    a.peers.add(1); b.peers.update({0, 2}); c.peers.add(1)
    topo = InternetTopology([a, b, c])
    routing = ASRouting(topo)
    assert routing.hops(0, 1) == 1
    with pytest.raises(RoutingError):
        routing.path(0, 2)


def test_deterministic_paths(routed):
    topo, _ = routed
    r1 = ASRouting(topo)
    r2 = ASRouting(topo)
    stubs = topo.stub_asns()
    for a, b in zip(stubs[:6], reversed(stubs[:6])):
        assert r1.path(a, b) == r2.path(a, b)
