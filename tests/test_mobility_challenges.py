"""Unit tests for mobility traces and the §6 challenge metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReproError
from repro.metrics import (
    asymmetric_nearest_fraction,
    hop_delay_correlation,
    knn_asymmetry,
    long_hop_fraction,
)
from repro.underlay import (
    MobilityConfig,
    cached_info_accuracy,
    generate_mobility,
    refresh_tradeoff,
)


class TestMobility:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MobilityConfig(mobile_fraction=1.5)
        with pytest.raises(ConfigurationError):
            MobilityConfig(mean_dwell_h=0.0)

    def test_trace_shape(self, small_underlay):
        trace = generate_mobility(
            small_underlay, MobilityConfig(mobile_fraction=0.5, mean_dwell_h=1.0),
            horizon_h=12.0, rng=1,
        )
        assert len(trace.mobile_hosts()) == round(0.5 * len(small_underlay.hosts))
        assert trace.total_moves() > 0
        for hid in trace.mobile_hosts():
            for t, asn in trace.moves[hid]:
                assert 0 <= t < 12.0
                small_underlay.topology.asys(asn)

    def test_asn_at_respects_timeline(self, small_underlay):
        trace = generate_mobility(
            small_underlay, MobilityConfig(mobile_fraction=1.0, mean_dwell_h=0.5),
            horizon_h=6.0, rng=2,
        )
        hid = trace.mobile_hosts()[0]
        assert trace.asn_at(hid, 0.0) == trace.initial_asn[hid]
        t_move, new_asn = trace.moves[hid][0]
        assert trace.asn_at(hid, t_move + 1e-9) == new_asn

    def test_static_hosts_never_move(self, small_underlay):
        trace = generate_mobility(
            small_underlay, MobilityConfig(mobile_fraction=0.2), horizon_h=24.0,
            rng=3,
        )
        static = set(trace.initial_asn) - set(trace.mobile_hosts())
        for hid in list(static)[:10]:
            assert trace.asn_at(hid, 23.9) == trace.initial_asn[hid]

    def test_in_region_roaming(self, small_underlay):
        trace = generate_mobility(
            small_underlay,
            MobilityConfig(mobile_fraction=1.0, mean_dwell_h=0.5,
                           roam_within_region=True),
            horizon_h=6.0, rng=4,
        )
        topo = small_underlay.topology
        for hid in trace.mobile_hosts()[:10]:
            region = topo.asys(trace.initial_asn[hid]).region
            for _t, asn in trace.moves[hid]:
                assert topo.asys(asn).region == region

    def test_cached_accuracy_decays(self, small_underlay):
        trace = generate_mobility(
            small_underlay, MobilityConfig(mobile_fraction=0.6, mean_dwell_h=1.0),
            horizon_h=24.0, rng=5,
        )
        rows = cached_info_accuracy(trace, [0.0, 2.0, 8.0, 20.0])
        accs = [r["accuracy"] for r in rows]
        assert accs[0] == 1.0
        assert accs[-1] < accs[0]
        assert all(0.0 <= a <= 1.0 for a in accs)

    def test_refresh_tradeoff_monotone(self, small_underlay):
        trace = generate_mobility(
            small_underlay, MobilityConfig(mobile_fraction=0.6, mean_dwell_h=1.0),
            horizon_h=24.0, rng=6,
        )
        rows = refresh_tradeoff(trace, [0.5, 2.0, 12.0])
        accs = [r["mean_accuracy"] for r in rows]
        bytes_ = [r["refresh_bytes"] for r in rows]
        # faster refresh -> better accuracy but more overhead
        assert accs[0] >= accs[-1]
        assert bytes_[0] > bytes_[-1]

    def test_validation(self, small_underlay):
        trace = generate_mobility(small_underlay, rng=1)
        with pytest.raises(ConfigurationError):
            trace.asn_at(999_999, 1.0)
        with pytest.raises(ConfigurationError):
            cached_info_accuracy(trace, [-1.0])
        with pytest.raises(ConfigurationError):
            refresh_tradeoff(trace, [0.0])
        with pytest.raises(ConfigurationError):
            generate_mobility(small_underlay, horizon_h=0.0)


class TestChallenges:
    def test_asymmetric_nearest_synthetic(self):
        # chain distances: 1's nearest is 0, 0's nearest is 1 (mutual);
        # a "satellite" c far from everyone points at 0 unreciprocated
        d = np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 6.0],
                [5.0, 6.0, 0.0],
            ]
        )
        assert asymmetric_nearest_fraction(d) == pytest.approx(1 / 3)

    def test_asymmetry_zero_for_symmetric_pairs(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert asymmetric_nearest_fraction(d) == 0.0

    def test_knn_asymmetry_bounds(self, small_underlay):
        rtt = small_underlay.rtt_matrix()
        a = knn_asymmetry(rtt, k=5)
        assert 0.0 <= a <= 1.0
        with pytest.raises(ReproError):
            knn_asymmetry(rtt, k=0)

    def test_real_matrices_are_asymmetric_in_selection(self, small_underlay):
        # the survey's claim: asymmetric node selection *occurs* in
        # latency-based systems — nonzero on realistic matrices
        rtt = small_underlay.rtt_matrix()
        assert knn_asymmetry(rtt, k=3) > 0.0

    def test_hop_delay_correlation_positive_but_imperfect(self, small_underlay):
        rho = hop_delay_correlation(small_underlay)
        assert 0.1 < rho < 0.95  # informative signal, far from perfect

    def test_long_hop_fraction(self, small_underlay):
        f = long_hop_fraction(small_underlay, delay_factor=1.5)
        assert 0.0 <= f <= 1.0
        # stricter factor can only reduce the fraction
        f2 = long_hop_fraction(small_underlay, delay_factor=3.0)
        assert f2 <= f
        with pytest.raises(ReproError):
            long_hop_fraction(small_underlay, delay_factor=0.5)
