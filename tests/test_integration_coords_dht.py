"""Integration: collection feeding usage — a live Vivaldi service supplies
the proximity estimates that drive Kademlia's PNS (the §3.2→§4 pipeline
through real protocol messages on both sides)."""

import pytest

from repro.collection import VivaldiGossipService
from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def test_vivaldi_estimates_drive_kademlia_pns():
    u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=95))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)

    # phase 1: the coordinate service converges
    viv = VivaldiGossipService(u, sim, bus, probe_period_ms=2_000.0, rng=4)
    sim.run(until=300_000.0)
    viv.stop()
    assert viv.median_relative_error() < 0.3

    # phase 2: Kademlia uses the *service's* estimates for PNS
    net = KademliaNetwork(
        u, sim, bus,
        config=KademliaConfig(proximity_buckets=True),
        rng=5,
        use_coordinate_estimates=False,  # no synthetic estimator ...
    )
    net._estimator = viv.estimate      # ... the real one instead
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=sim.now + 120_000)
    stats = net.run_value_workload(20, 60)
    assert stats.success_rate >= 0.95

    # compare against a no-proximity control on a fresh bus
    sim2 = Simulation()
    bus2, _ = u.message_bus(sim2, with_accounting=False)
    control = KademliaNetwork(
        u, sim2, bus2, config=KademliaConfig(), rng=5,
        use_coordinate_estimates=False,
    )
    control.add_all_hosts()
    control.bootstrap_all()
    sim2.run(until=120_000)
    control.run_value_workload(20, 60)

    # service-driven PNS retains cheaper contacts than the control
    assert net.mean_contact_rtt() < control.mean_contact_rtt()
