"""Unit tests for zones, the Globase overlay and POI search."""

import numpy as np
import pytest

from repro.collection import GPSService, IPToLocationMapping
from repro.errors import OverlayError
from repro.overlay.geo import (
    GlobaseOverlay,
    POIDirectory,
    PointOfInterest,
    Rect,
    ZoneTree,
    emergency_dispatch,
)
from repro.underlay.geometry import Position


class TestRect:
    def test_contains_half_open(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Position(0, 0))
        assert not r.contains(Position(10, 10))

    def test_quadrants_partition(self):
        r = Rect(0, 0, 10, 10)
        quads = r.quadrants()
        assert len(quads) == 4
        rng = np.random.default_rng(1)
        for _ in range(100):
            p = Position(*rng.uniform(0, 10, 2))
            assert sum(q.contains(p) for q in quads) == 1

    def test_intersects(self):
        a = Rect(0, 0, 5, 5)
        assert a.intersects(Rect(4, 4, 10, 10))
        assert not a.intersects(Rect(5, 5, 10, 10))  # touching edges only

    def test_min_distance(self):
        r = Rect(0, 0, 10, 10)
        assert r.min_distance_to(Position(5, 5)) == 0.0
        assert r.min_distance_to(Position(13, 14)) == pytest.approx(5.0)

    def test_degenerate_rejected(self):
        with pytest.raises(OverlayError):
            Rect(0, 0, 0, 10)


class TestZoneTree:
    def test_insert_and_split(self):
        tree = ZoneTree(Rect(0, 0, 100, 100), capacity=2)
        rng = np.random.default_rng(2)
        for i in range(20):
            tree.insert(i, Position(*rng.uniform(0, 100, 2)))
        assert len(tree) == 20
        for leaf in tree.leaves():
            assert len(leaf.members) <= 2 or leaf.depth == tree.max_depth

    def test_duplicate_and_missing_peers(self):
        tree = ZoneTree(Rect(0, 0, 10, 10), capacity=4)
        tree.insert(1, Position(1, 1))
        with pytest.raises(OverlayError):
            tree.insert(1, Position(2, 2))
        with pytest.raises(OverlayError):
            tree.remove(99)

    def test_out_of_world_rejected(self):
        tree = ZoneTree(Rect(0, 0, 10, 10), capacity=4)
        with pytest.raises(OverlayError):
            tree.insert(1, Position(50, 50))

    def test_search_area_exact(self):
        tree = ZoneTree(Rect(0, 0, 100, 100), capacity=3)
        pts = {i: Position(float(i), float(i)) for i in range(50)}
        for i, p in pts.items():
            tree.insert(i, p)
        found, visited = tree.search_area(Rect(10, 10, 20, 20))
        assert found == list(range(10, 20))
        assert visited > 0

    def test_nearest_matches_brute_force(self):
        tree = ZoneTree(Rect(0, 0, 100, 100), capacity=4)
        rng = np.random.default_rng(3)
        pts = {i: Position(*rng.uniform(0, 100, 2)) for i in range(60)}
        for i, p in pts.items():
            tree.insert(i, p)
        q = Position(33.0, 57.0)
        got, _v = tree.nearest(q, k=5)
        brute = sorted(pts, key=lambda i: pts[i].distance_to(q))[:5]
        assert got == brute

    def test_remove_then_not_found(self):
        tree = ZoneTree(Rect(0, 0, 10, 10), capacity=4)
        tree.insert(1, Position(5, 5))
        tree.remove(1)
        found, _ = tree.search_area(Rect(0, 0, 10, 10))
        assert found == []


class TestGlobase:
    def test_join_all_with_true_positions(self, small_underlay):
        g = GlobaseOverlay(small_underlay)
        assert g.join_all() == len(small_underlay.hosts)
        assert g.zone_count() >= 1
        assert g.stats.joins == len(small_underlay.hosts)

    def test_gps_unavailable_peers_cannot_join(self, small_underlay):
        gps = GPSService(small_underlay, availability=0.5, seed=4)
        g = GlobaseOverlay(small_underlay, position_source=gps.position_of)
        joined = g.join_all()
        assert 0 < joined < len(small_underlay.hosts)

    def test_area_recall_perfect_with_gps(self, small_underlay):
        gps = GPSService(small_underlay, availability=1.0, error_m=10.0)
        g = GlobaseOverlay(small_underlay, position_source=gps.position_of)
        g.join_all()
        area = Rect(0.0, 0.0, 5000.0, 5000.0)
        assert g.recall_of_area_query(area) == 1.0

    def test_coarse_mapping_degrades_recall(self, small_underlay):
        ipl = IPToLocationMapping(small_underlay, error_km=500.0, seed=6)
        g = GlobaseOverlay(small_underlay, position_source=ipl.lookup)
        g.join_all()
        area = Rect(1500.0, 1500.0, 3000.0, 3000.0)
        gps = GPSService(small_underlay, availability=1.0, error_m=10.0)
        g2 = GlobaseOverlay(small_underlay, position_source=gps.position_of)
        g2.join_all()
        assert g.recall_of_area_query(area) <= g2.recall_of_area_query(area)

    def test_leave(self, small_underlay):
        g = GlobaseOverlay(small_underlay)
        g.join_all()
        hid = small_underlay.host_ids()[0]
        g.leave(hid)
        assert hid not in g.believed

    def test_query_delay_positive(self, small_underlay):
        g = GlobaseOverlay(small_underlay)
        g.join_all()
        area = Rect(1000.0, 1000.0, 2500.0, 2500.0)
        d = g.query_delay_ms(small_underlay.host_ids()[0], area)
        assert d > 0


class TestPOI:
    @pytest.fixture()
    def directory(self, small_underlay):
        g = GlobaseOverlay(small_underlay)
        g.join_all()
        d = POIDirectory(g)
        for h in small_underlay.hosts[:10]:
            d.register(PointOfInterest(h.host_id, "restaurant", f"r{h.host_id}"))
        for h in small_underlay.hosts[10:14]:
            d.register(PointOfInterest(h.host_id, "emergency"))
        return small_underlay, d

    def test_register_requires_membership(self, small_underlay):
        g = GlobaseOverlay(small_underlay)
        d = POIDirectory(g)
        with pytest.raises(OverlayError):
            d.register(PointOfInterest(small_underlay.host_ids()[0], "cafe"))

    def test_find_in_area_filters_category(self, directory):
        _u, d = directory
        area = Rect(-1e4, -1e4, 2e4, 2e4)
        rests = d.find_in_area(area, "restaurant")
        assert len(rests) == 10
        assert all(p.category == "restaurant" for p in rests)
        assert len(d.find_in_area(area)) == 14

    def test_find_nearest_is_truly_nearest(self, directory):
        u, d = directory
        query_pos = Position(2500.0, 2500.0)
        got = d.find_nearest(query_pos, "restaurant", k=3, search_k=40)
        assert len(got) == 3
        rest_hosts = [h for h in u.hosts[:10]]
        brute = sorted(
            rest_hosts, key=lambda h: h.position.distance_to(query_pos)
        )[:3]
        assert {p.host_id for p in got} == {h.host_id for h in brute}

    def test_emergency_dispatch(self, directory):
        _u, d = directory
        got = emergency_dispatch(d, Position(2000.0, 2000.0), k=2)
        assert len(got) == 2
        assert all(p.category == "emergency" for p in got)
