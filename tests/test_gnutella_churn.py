"""Integration: Gnutella under churn (§5.4 — the open robustness question)."""

import networkx as nx
import pytest

from repro.overlay.gnutella import GnutellaNetwork, LEAF, ULTRAPEER
from repro.sim import ChurnConfig, ChurnProcess, Simulation
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture()
def net():
    u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=33))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    network = GnutellaNetwork(u, sim, bus, rng=2)
    network.add_population(u.hosts)
    network.bootstrap(cache_fill=40)
    network.join_all()
    sim.run()
    return u, sim, network


def test_graceful_leave_cleans_neighbor_state(net):
    _u, sim, network = net
    up = network.ultrapeers()[0]
    peers_before = set(up.neighbors) | set(up.leaves)
    assert peers_before
    network.part(up.host_id)
    sim.run()
    assert not up.online
    for peer_id in peers_before:
        peer = network.nodes[peer_id]
        assert up.host_id not in peer.neighbors
        assert up.host_id not in peer.leaves


def test_leaf_finds_replacement_after_up_departure(net):
    _u, sim, network = net
    # find a leaf with a full set of ultrapeers
    leaf = next(
        n for n in network.leaves()
        if len(n.neighbors) == network.config.leaf_connections
    )
    lost_up = next(iter(leaf.neighbors))
    network.part(lost_up)
    sim.run()
    assert lost_up not in leaf.neighbors
    # repair kicked in: the leaf is connected again (hostcache permitting)
    assert len(leaf.neighbors) >= 1


def test_rejoin_restores_connectivity(net):
    _u, sim, network = net
    up = network.ultrapeers()[1]
    network.part(up.host_id)
    sim.run()
    network.rejoin(up.host_id)
    sim.run()
    assert up.online
    assert len(up.neighbors) > 0


def test_departed_node_unreachable_by_search(net):
    _u, sim, network = net
    leaf = network.leaves()[0]
    network.share_content(leaf.host_id, [4242])
    sim.run()
    network.part(leaf.host_id)
    sim.run()
    guid = network.search(network.leaves()[-1].host_id, 4242)
    sim.run()
    # ultrapeers dropped the departed leaf from their indexes
    assert leaf.host_id not in network.searches[guid].hits


def test_overlay_survives_sustained_churn(net):
    u, sim, network = net
    churn = ChurnProcess(
        sim,
        peers=[n.host_id for n in network.leaves()],  # leaves churn
        config=ChurnConfig(mean_session=60_000.0, mean_offline=30_000.0),
        on_join=lambda hid: network.rejoin(hid)
        if not network.nodes[hid].online
        else None,
        on_leave=lambda hid: network.part(hid),
        rng=5,
    )
    churn.start(warmup=5_000.0)
    sim.run(until=sim.now + 300_000.0)  # five minutes of churn
    churn.stop()
    sim.run(until=sim.now + 10_000.0)
    online = [n for n in network.nodes.values() if n.online]
    assert len(online) > 30
    graph = network.overlay_graph().subgraph([n.host_id for n in online])
    # the ultrapeer core stays one component for the online majority
    biggest = max(nx.connected_components(graph), key=len)
    assert len(biggest) >= 0.8 * len(online)
    # and searches still work
    provider = next(n for n in online if n.role == LEAF)
    network.share_content(provider.host_id, [777])
    sim.run()
    origin = next(
        n for n in reversed(online) if n.role == LEAF and n is not provider
    )
    guid = network.search(origin.host_id, 777)
    sim.run()
    assert network.searches[guid].hits
