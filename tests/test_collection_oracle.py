"""Unit tests for the ISP oracle."""

import pytest

from repro.collection import ISPOracle
from repro.errors import CollectionError


def test_rank_orders_by_as_hops(dense_underlay):
    u = dense_underlay
    oracle = ISPOracle(u)
    ids = u.host_ids()
    querier = ids[0]
    ranked = oracle.rank(querier, ids[1:])
    my_asn = u.asn_of(querier)
    hops = [u.routing.hops(my_asn, u.asn_of(c)) for c in ranked]
    assert hops == sorted(hops)


def test_same_as_candidates_rank_first(dense_underlay):
    u = dense_underlay
    oracle = ISPOracle(u)
    querier = u.hosts[0].host_id
    same_as = [h.host_id for h in u.hosts[1:] if h.asn == u.hosts[0].asn]
    assert same_as, "dense underlay should have same-AS peers"
    ranked = oracle.rank(querier, u.host_ids()[1:])
    top = ranked[: len(same_as)]
    assert set(top) == set(same_as)


def test_rank_is_permutation(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    ranked = oracle.rank(ids[0], ids[1:20])
    assert sorted(ranked) == sorted(ids[1:20])


def test_limit_truncates_before_ranking(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    ranked = oracle.rank(ids[0], ids[1:30], limit=5)
    assert len(ranked) == 5
    assert set(ranked) <= set(ids[1:6])


def test_stable_tie_break_is_deterministic(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    a = oracle.rank(ids[0], ids[1:25])
    b = oracle.rank(ids[0], ids[1:25])
    assert a == b


def test_best_and_empty(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    assert oracle.best(ids[0], []) is None
    assert oracle.best(ids[0], ids[1:4]) in ids[1:4]


def test_same_as_filter(dense_underlay):
    u = dense_underlay
    oracle = ISPOracle(u)
    querier = u.hosts[0].host_id
    got = oracle.same_as_candidates(querier, u.host_ids()[1:])
    assert all(u.asn_of(c) == u.hosts[0].asn for c in got)


def test_overhead_scales_with_list_size(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    oracle.rank(ids[0], ids[1:11])
    small = oracle.overhead.bytes_on_wire
    oracle.rank(ids[0], ids[1:81])
    assert oracle.overhead.bytes_on_wire - small > small


def test_invalid_limit_rejected(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    with pytest.raises(CollectionError):
        oracle.rank(ids[0], ids[1:4], limit=0)


def test_counters(dense_underlay):
    oracle = ISPOracle(dense_underlay)
    ids = dense_underlay.host_ids()
    oracle.rank(ids[0], ids[1:5])
    oracle.rank(ids[1], ids[2:8])
    assert oracle.lists_ranked == 2
    assert oracle.candidates_ranked == 10
