"""Distributional equivalence: flow-level swarm vs the time-stepped twin.

Same underlay, torrent, tracker policy and seeds — the flow plane
(:class:`FlowSwarmSimulation`) must reproduce the reference
(:class:`SwarmSimulationReference`) up to the fluid abstraction:

- everyone who completes in the reference completes on the flow plane;
- traffic-class byte fractions (intra-AS / transit) agree within a few
  points — these drive the ISP-cost conclusions of locality sweeps;
- completion times agree within a documented band.  The flow plane is
  *systematically faster* (ratio < 1): it has no piece-rarity friction —
  any uploader with data serves any interested peer, while the reference
  wastes unchoke slots on blocked piece picks and queues endgame pieces
  on the seeds' uplinks.  What the band asserts is that the fluid model
  stays within a bounded constant of the exact one, not that the gap is
  zero.

Both populations seed from the fastest-uplink hosts: initial seeds gate
content injection, and seeding from an arbitrary (possibly dial-up) host
would measure the seed's access link in both planes rather than the
swarm dynamics being compared.
"""

import numpy as np
import pytest

from repro.overlay.bittorrent import (
    FlowPlaneConfig,
    FlowSwarmSimulation,
    SwarmSimulationReference,
    Torrent,
    Tracker,
    TrackerPolicy,
)
from repro.underlay import Underlay, UnderlayConfig

MEDIAN_RATIO_BAND = (0.15, 1.25)
MEAN_RATIO_BAND = (0.30, 1.10)
FRACTION_TOL = 0.08


def _swarm_setup(seed: int, *, n_hosts: int = 60, n_seeds: int = 3):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    ids = underlay.host_ids()
    seeds = sorted(
        ids, key=lambda h: -underlay.host(h).resources.bandwidth_up_kbps
    )[:n_seeds]
    leechers = [h for h in ids if h not in seeds]
    torrent = Torrent(0, n_pieces=64, piece_size_bytes=262144)
    return underlay, torrent, seeds, leechers


def _run_pair(seed: int):
    underlay, torrent, seeds, leechers = _swarm_setup(seed)
    ref = SwarmSimulationReference(
        underlay, torrent, Tracker(underlay, rng=seed), rng=seed
    )
    ref.populate(leechers, seeds)
    ref_report = ref.run(max_time_s=4000.0)

    flow = FlowSwarmSimulation(
        underlay, torrent, Tracker(underlay, rng=seed), rng=seed
    )
    flow.populate(leechers, seeds)
    flow_report = flow.run(max_time_s=4000.0)
    return ref_report, flow_report


@pytest.mark.parametrize("seed", [7, 21, 99])
def test_flow_plane_matches_reference(seed):
    ref, flow = _run_pair(seed)

    assert flow.completed == ref.completed == flow.total_leechers

    med_ratio = flow.median_download_time_s / ref.median_download_time_s
    mean_ratio = flow.mean_download_time_s / ref.mean_download_time_s
    assert MEDIAN_RATIO_BAND[0] <= med_ratio <= MEDIAN_RATIO_BAND[1], (
        f"median ratio {med_ratio:.2f} outside {MEDIAN_RATIO_BAND}"
    )
    assert MEAN_RATIO_BAND[0] <= mean_ratio <= MEAN_RATIO_BAND[1], (
        f"mean ratio {mean_ratio:.2f} outside {MEAN_RATIO_BAND}"
    )

    assert flow.intra_as_fraction == pytest.approx(
        ref.intra_as_fraction, abs=FRACTION_TOL
    )
    assert flow.transit_fraction == pytest.approx(
        ref.transit_fraction, abs=FRACTION_TOL
    )
    # both planes move the full torrent to every leecher
    expected = flow.total_leechers * 64 * 262144
    assert flow.total_bytes == pytest.approx(expected, rel=0.05)


def test_flow_plane_deterministic():
    reports = []
    for _ in range(2):
        underlay, torrent, seeds, leechers = _swarm_setup(5, n_hosts=40)
        swarm = FlowSwarmSimulation(
            underlay, torrent, Tracker(underlay, rng=5), rng=5
        )
        swarm.populate(leechers, seeds)
        reports.append(swarm.run(max_time_s=4000.0))
    a, b = reports
    assert a.median_download_time_s == b.median_download_time_s
    assert a.intra_as_bytes == b.intra_as_bytes
    assert a.transit_bytes == b.transit_bytes


def test_flow_plane_biased_tracker_shifts_traffic():
    underlay, torrent, seeds, leechers = _swarm_setup(13, n_hosts=60)

    def run(policy_kwargs):
        tracker = Tracker(underlay, peer_list_size=20, rng=13, **policy_kwargs)
        swarm = FlowSwarmSimulation(underlay, torrent, tracker, rng=13)
        swarm.populate(leechers, seeds)
        return swarm.run(max_time_s=4000.0)

    random_rep = run({})
    biased_rep = run(
        {"policy": TrackerPolicy.BIASED, "external_quota": 2}
    )
    assert biased_rep.intra_as_fraction > random_rep.intra_as_fraction
    assert biased_rep.transit_fraction < random_rep.transit_fraction


def test_flow_plane_billing_consistent():
    underlay, torrent, seeds, leechers = _swarm_setup(7, n_hosts=40)
    swarm = FlowSwarmSimulation(
        underlay, torrent, Tracker(underlay, rng=7), rng=7
    )
    swarm.populate(leechers, seeds)
    report = swarm.run(max_time_s=4000.0)
    # every transit byte is charged to >= 1 paying AS, and the ledger's
    # lifetime totals agree with the running per-AS tallies
    paid = sum(swarm.paid_transit.values())
    assert paid >= report.transit_bytes * (1 - 1e-9)
    for asn, total in swarm.billing.total_bytes.items():
        assert total == pytest.approx(swarm.paid_transit[asn])


def test_work_conserving_at_least_as_fast():
    underlay, torrent, seeds, leechers = _swarm_setup(21, n_hosts=40)

    def run(flow_config):
        swarm = FlowSwarmSimulation(
            underlay, torrent, Tracker(underlay, rng=21), rng=21,
            flow_config=flow_config,
        )
        swarm.populate(leechers, seeds)
        return swarm.run(max_time_s=4000.0)

    default = run(FlowPlaneConfig())
    conserving = run(FlowPlaneConfig(work_conserving=True))
    assert conserving.completed == default.completed
    # redistribution of unclaimed slot shares can only help
    assert (
        conserving.mean_download_time_s
        <= default.mean_download_time_s * 1.05
    )


def test_arrival_span_staggers_joins():
    underlay, torrent, seeds, leechers = _swarm_setup(9, n_hosts=40)
    swarm = FlowSwarmSimulation(
        underlay, torrent, Tracker(underlay, rng=9), rng=9
    )
    swarm.populate(leechers, seeds, arrival_span_s=200.0)
    report = swarm.run(max_time_s=4000.0)
    assert report.completed == report.total_leechers
    joins = [
        p.join_time for p in swarm.peers.values() if not p.is_initial_seed
    ]
    assert max(joins) > 100.0


def test_download_times_by_as_partitions_leechers():
    underlay, torrent, seeds, leechers = _swarm_setup(11, n_hosts=40)
    swarm = FlowSwarmSimulation(
        underlay, torrent, Tracker(underlay, rng=11), rng=11
    )
    swarm.populate(leechers, seeds)
    report = swarm.run(max_time_s=4000.0)
    by_as = swarm.download_times_by_as()
    assert sum(ts.size for ts in by_as.values()) == report.completed
    assert all(np.all(ts > 0) for ts in by_as.values())
