"""Unit tests for traffic accounting."""

import pytest

from repro.underlay import TrafficAccountant
from repro.underlay.autonomous_system import LinkType


@pytest.fixture()
def accountant(small_underlay):
    u = small_underlay
    return u, TrafficAccountant(u.topology, u.routing, u.asn_of)


def _pair_with(u, want_same_as: bool):
    hosts = u.hosts
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            if (a.asn == b.asn) == want_same_as:
                return a.host_id, b.host_id
    raise AssertionError("no suitable pair found")


def test_intra_as_message(accountant):
    u, acct = accountant
    a, b = _pair_with(u, True)
    acct.observe(a, b, 500, "X")
    assert acct.summary.intra_as_bytes == 500
    assert acct.summary.transit_bytes == 0
    assert acct.summary.intra_as_fraction == 1.0


def test_inter_as_message_charges_links(accountant):
    u, acct = accountant
    a, b = _pair_with(u, False)
    acct.observe(a, b, 1000, "X")
    assert acct.summary.total_bytes == 1000
    assert acct.link_bytes  # at least one inter-AS link used
    links = u.routing.path_links(u.asn_of(a), u.asn_of(b))
    crossed_transit = any(t is LinkType.TRANSIT for _x, _y, t in links)
    if crossed_transit:
        assert acct.summary.transit_bytes == 1000
        # the paying AS is a customer on some link of the route
        assert acct.paid_transit_bytes
    else:
        assert acct.summary.peering_bytes == 1000


def test_message_counter(accountant):
    u, acct = accountant
    a, b = _pair_with(u, True)
    for _ in range(5):
        acct.observe(a, b, 10, "K")
    assert acct.summary.messages == 5


def test_kind_breakdown(accountant):
    u, acct = accountant
    same = _pair_with(u, True)
    diff = _pair_with(u, False)
    acct.observe(*same, 100, "CTRL")
    acct.observe(*diff, 200, "CTRL")
    intra, inter = acct.kind_bytes["CTRL"]
    assert (intra, inter) == (100, 200)


def test_reset(accountant):
    u, acct = accountant
    a, b = _pair_with(u, False)
    acct.observe(a, b, 100, "X")
    acct.reset()
    assert acct.summary.total_bytes == 0
    assert not acct.link_bytes


def test_peak_billing_with_clock(small_underlay):
    u = small_underlay
    t = {"now": 0.0}
    acct = TrafficAccountant(
        u.topology, u.routing, u.asn_of, clock=lambda: t["now"], bucket_seconds=300.0
    )
    a, b = _pair_with(u, False)
    links = u.routing.path_links(u.asn_of(a), u.asn_of(b))
    transit = [(x, y) for x, y, lt in links if lt is LinkType.TRANSIT]
    if not transit:
        pytest.skip("sampled pair crosses no transit link")
    # steady 1000 B per bucket for 10 buckets, then one 100x spike
    for k in range(10):
        t["now"] = k * 300.0
        acct.observe(a, b, 1000, "DATA")
    t["now"] = 10 * 300.0
    acct.observe(a, b, 100_000, "DATA")
    link = transit[0]
    p95 = acct.peak_transit_mbps(link, percentile=95)
    p100 = acct.peak_transit_mbps(link, percentile=100)
    assert p100 > p95  # sampled-peak billing shaves the spike
    assert p95 > 0
