"""Property tests: quadtree invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.geo import Rect, ZoneTree
from repro.underlay.geometry import Position

coords = st.floats(min_value=0.0, max_value=99.999, allow_nan=False)
points = st.lists(st.tuples(coords, coords), min_size=0, max_size=60)


def _build(pts):
    tree = ZoneTree(Rect(0, 0, 100, 100), capacity=4)
    for i, (x, y) in enumerate(pts):
        tree.insert(i, Position(x, y))
    return tree


@given(points)
def test_every_peer_in_exactly_one_leaf(pts):
    tree = _build(pts)
    seen = []
    for leaf in tree.leaves():
        for pid, pos in leaf.members.items():
            assert leaf.rect.contains(pos)
            seen.append(pid)
    assert sorted(seen) == list(range(len(pts)))


@given(points)
def test_leaf_capacity_respected(pts):
    tree = _build(pts)
    for leaf in tree.leaves():
        assert len(leaf.members) <= 4 or leaf.depth == tree.max_depth


@given(points, coords, coords, coords, coords)
def test_area_query_matches_brute_force(pts, x0, y0, x1, y1):
    if x1 <= x0 or y1 <= y0:
        return
    tree = _build(pts)
    area = Rect(x0, y0, x1, y1)
    found, _visited = tree.search_area(area)
    brute = sorted(
        i for i, (x, y) in enumerate(pts) if area.contains(Position(x, y))
    )
    assert found == brute


@given(points, coords, coords, st.integers(min_value=1, max_value=8))
def test_nearest_matches_brute_force(pts, qx, qy, k):
    if not pts:
        return
    tree = _build(pts)
    q = Position(qx, qy)
    got, _visited = tree.nearest(q, k=k)
    dists = sorted(
        (Position(x, y).distance_to(q), i) for i, (x, y) in enumerate(pts)
    )
    expected = [i for _d, i in dists[:k]]
    # ties can reorder equal-distance peers; compare distances not ids
    got_d = [Position(*pts[i]).distance_to(q) for i in got]
    exp_d = [d for d, _i in dists[:k]]
    assert np.allclose(got_d, exp_d)


@given(points)
def test_remove_all_leaves_empty_tree(pts):
    tree = _build(pts)
    for i in range(len(pts)):
        tree.remove(i)
    assert len(tree) == 0
    found, _ = tree.search_area(Rect(0, 0, 100, 100))
    assert found == []
