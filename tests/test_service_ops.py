"""Protocol op adapters: seeding, issue/complete paths, origin picking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.overlay.gnutella.network import GnutellaNetwork
from repro.overlay.kademlia.network import KademliaNetwork
from repro.service import GnutellaServiceOps, KademliaServiceOps
from repro.sim.engine import Simulation
from repro.underlay.network import Underlay, UnderlayConfig
from repro.workloads import ContentCatalog


def _kademlia_net(n_hosts=16, seed=3):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    sim = Simulation()
    bus, _ = underlay.message_bus(sim, with_accounting=False)
    net = KademliaNetwork(underlay, sim, bus, rng=seed)
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=10_000.0)
    return net


def _gnutella_net(n_hosts=16, seed=3):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    sim = Simulation()
    bus, _ = underlay.message_bus(sim, with_accounting=False)
    net = GnutellaNetwork(underlay, sim, bus, rng=seed)
    net.add_population(underlay.hosts)
    net.bootstrap()
    net.join_all()
    sim.run(until=10_000.0)
    return net


class TestKademliaOps:
    def test_seed_content_publishes_retrievable_keys(self):
        net = _kademlia_net()
        ops = KademliaServiceOps(net, rng=1)
        fresh = ops.seed_content(5, settle_ms=10_000.0)
        assert len(fresh) == 5 and ops.keys == fresh

        outcomes = []
        ops._issue_retrieve(ops.pick_origin(np.random.default_rng(2)),
                            outcomes.append)
        net.sim.run(until=net.sim.now + 20_000.0)
        assert outcomes == [True]

    def test_store_adds_key_on_success(self):
        net = _kademlia_net()
        ops = KademliaServiceOps(net, rng=1)
        outcomes = []
        ops._issue_store(ops.pick_origin(np.random.default_rng(2)),
                         outcomes.append)
        net.sim.run(until=net.sim.now + 20_000.0)
        assert outcomes == [True]
        assert len(ops.keys) == 1

    def test_retrieve_with_no_known_keys_fails_fast(self):
        net = _kademlia_net()
        ops = KademliaServiceOps(net, rng=1)
        outcomes = []
        ops._issue_retrieve(0, outcomes.append)
        assert outcomes == [False]  # synchronous, nothing to look up

    def test_mix_weights_and_validation(self):
        net = _kademlia_net()
        ops = KademliaServiceOps(net, rng=1)
        store, retrieve = ops.mix(store_fraction=0.25)
        assert (store.name, retrieve.name) == ("kad_store", "kad_retrieve")
        assert store.weight + retrieve.weight == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            ops.mix(store_fraction=0.0)

    def test_pick_origin_requires_online_nodes(self):
        net = _kademlia_net()
        ops = KademliaServiceOps(net, rng=1)
        for node in net.nodes.values():
            node.go_offline()
        with pytest.raises(ConfigurationError):
            ops.pick_origin(np.random.default_rng(1))


class TestGnutellaOps:
    def test_search_completes_on_first_hit(self):
        net = _gnutella_net()
        catalog = ContentCatalog(rng=2)
        ops = GnutellaServiceOps(net, catalog, rng=1)
        ops.seed_content(files_per_host=8)

        rng = np.random.default_rng(3)
        outcomes = []
        for _ in range(20):
            ops._issue_search(ops.pick_origin(rng), outcomes.append)
        net.sim.run(until=net.sim.now + 20_000.0)
        # popular catalogue + dense sharing: most searches hit, each
        # exactly once (the listener pops its pending entry)
        assert 0 < len(outcomes) <= 20
        assert all(ok is True for ok in outcomes)

    def test_listener_slot_is_exclusive(self):
        net = _gnutella_net()
        catalog = ContentCatalog(rng=2)
        GnutellaServiceOps(net, catalog, rng=1)
        with pytest.raises(ConfigurationError):
            GnutellaServiceOps(net, catalog, rng=1)

    def test_mix_is_search_only(self):
        net = _gnutella_net()
        ops = GnutellaServiceOps(net, ContentCatalog(rng=2), rng=1)
        (spec,) = ops.mix()
        assert spec.name == "gnu_search"
