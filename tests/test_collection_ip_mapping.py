"""Unit tests for IP-to-ISP and IP-to-location mapping services."""

import numpy as np
import pytest

from repro.collection import IPToISPMapping, IPToLocationMapping
from repro.errors import CollectionError


def test_perfect_mapping(small_underlay):
    m = IPToISPMapping(small_underlay, accuracy=1.0)
    for h in small_underlay.hosts:
        assert m.lookup(h.host_id) == h.asn
    assert m.error_rate(small_underlay.host_ids()) == 0.0


def test_imperfect_mapping_errs_to_neighbor_as(small_underlay):
    u = small_underlay
    m = IPToISPMapping(u, accuracy=0.0)  # always wrong
    for h in u.hosts[:10]:
        got = m.lookup(h.host_id)
        assert got != h.asn
        assert got in u.topology.graph.neighbors(h.asn)


def test_mapping_is_deterministic_per_host(small_underlay):
    m = IPToISPMapping(small_underlay, accuracy=0.5, seed=3)
    hid = small_underlay.host_ids()[0]
    assert m.lookup(hid) == m.lookup(hid)


def test_error_rate_tracks_accuracy(small_underlay):
    m = IPToISPMapping(small_underlay, accuracy=0.8, seed=1)
    rate = m.error_rate(small_underlay.host_ids())
    assert 0.0 <= rate <= 0.5


def test_overhead_charged_per_lookup(small_underlay):
    m = IPToISPMapping(small_underlay)
    m.lookup(small_underlay.host_ids()[0])
    m.lookup(small_underlay.host_ids()[1])
    assert m.overhead.queries == 2
    assert m.overhead.bytes_on_wire > 0


def test_invalid_accuracy_rejected(small_underlay):
    with pytest.raises(CollectionError):
        IPToISPMapping(small_underlay, accuracy=1.5)


def test_location_mapping_error_scale(small_underlay):
    u = small_underlay
    coarse = IPToLocationMapping(u, error_km=200.0, seed=2)
    fine = IPToLocationMapping(u, error_km=5.0, seed=2)
    ids = u.host_ids()
    assert fine.median_error_km(ids) < coarse.median_error_km(ids)


def test_location_mapping_deterministic(small_underlay):
    m = IPToLocationMapping(small_underlay, seed=4)
    hid = small_underlay.host_ids()[3]
    a = m.lookup(hid)
    b = m.lookup(hid)
    assert (a.x, a.y) == (b.x, b.y)


def test_location_negative_error_rejected(small_underlay):
    with pytest.raises(CollectionError):
        IPToLocationMapping(small_underlay, error_km=-1.0)
