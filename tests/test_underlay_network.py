"""Unit tests for the Underlay facade."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def test_generate_is_deterministic():
    a = Underlay.generate(UnderlayConfig(n_hosts=20, seed=5))
    b = Underlay.generate(UnderlayConfig(n_hosts=20, seed=5))
    assert np.allclose(a.latency_matrix, b.latency_matrix)
    assert [h.asn for h in a.hosts] == [h.asn for h in b.hosts]


def test_host_lookup(small_underlay):
    u = small_underlay
    h = u.hosts[5]
    assert u.host(h.host_id) is h
    with pytest.raises(TopologyError):
        u.host(99_999)


def test_asn_of_and_hosts_in_as(small_underlay):
    u = small_underlay
    h = u.hosts[0]
    assert u.asn_of(h.host_id) == h.asn
    assert h in u.hosts_in_as(h.asn)


def test_latency_provider_protocol(small_underlay):
    u = small_underlay
    ids = u.host_ids()
    d = u.one_way_delay(ids[0], ids[1])
    assert d > 0
    assert d == pytest.approx(u.latency_matrix[0, 1])


def test_as_hops(small_underlay):
    u = small_underlay
    ids = u.host_ids()
    h = u.as_hops(ids[0], ids[1])
    assert h >= 0


def test_message_bus_wiring(small_underlay):
    u = small_underlay
    sim = Simulation()
    bus, acct = u.message_bus(sim)
    got = []
    ids = u.host_ids()
    bus.register(ids[1], got.append)
    bus.send(ids[0], ids[1], "X", size_bytes=123)
    sim.run()
    assert len(got) == 1
    assert acct.summary.total_bytes == 123


def test_message_bus_without_accounting(small_underlay):
    sim = Simulation()
    bus, acct = small_underlay.message_bus(sim, with_accounting=False)
    assert acct is None
    assert bus is not None


def test_duplicate_host_ids_rejected(small_underlay):
    u = small_underlay
    with pytest.raises(TopologyError):
        Underlay(u.topology, [u.hosts[0], u.hosts[0]])
