"""ScoreCache / CachedSelection: hits, LRU, invalidation wiring, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.collection.coordinate_service import VivaldiGossipService
from repro.collection.oracle import ISPOracle
from repro.core.score_cache import CachedSelection, ScoreCache
from repro.core.selection import (
    CompositeSelection,
    ISPLocalitySelection,
    LatencySelection,
    RandomSelection,
    ResourceSelection,
)
from repro.errors import ConfigurationError
from repro.sim import ChurnConfig, ChurnProcess, Simulation


class _CountingSelector(LatencySelection):
    """Latency selector that counts how many rankings actually ran."""

    def __init__(self, underlay):
        inner = LatencySelection.from_underlay(underlay)
        super().__init__(inner.rtt_predictor, batch_predictor=inner.batch_predictor)
        self.rank_calls = 0

    def score_many(self, querying_host, candidates):
        self.rank_calls += 1
        return super().score_many(querying_host, candidates)


def test_cached_rank_and_top_k_hit(small_underlay):
    ids = small_underlay.host_ids()
    inner = _CountingSelector(small_underlay)
    cached = CachedSelection(inner)
    cand = ids[1:20]
    first = cached.rank(ids[0], cand)
    again = cached.rank(ids[0], cand)
    assert first == again == inner.rank(ids[0], cand)
    assert inner.rank_calls == 2  # one cached miss + the direct call above
    assert cached.cache.hits == 1 and cached.cache.misses == 1
    # full-rank and top-k entries are separate keys
    top = cached.top_k(ids[0], cand, 3)
    assert top == first[:3]
    assert cached.top_k(ids[0], cand, 3) == top
    assert cached.cache.hits == 2
    # select() flows through the cached top_k
    assert cached.select(ids[0], cand, 3) == top
    with pytest.raises(ConfigurationError):
        cached.top_k(ids[0], cand, -1)


def test_cache_returns_copies_and_respects_order(small_underlay):
    ids = small_underlay.host_ids()
    cached = CachedSelection(LatencySelection.from_underlay(small_underlay))
    cand = ids[1:10]
    ranked = cached.rank(ids[0], cand)
    ranked.append(-1)  # mutating the result must not corrupt the cache
    assert cached.rank(ids[0], cand)[-1] != -1
    # candidate order is part of the key: ties break by input position
    assert cached.cache.lookup("x", ids[0], cand) is None
    digest_fwd = cached.cache.candidate_digest(cand)
    digest_rev = cached.cache.candidate_digest(list(reversed(cand)))
    assert digest_fwd != digest_rev


def test_seed_keys_the_digest():
    assert ScoreCache(seed=1).candidate_digest([1, 2, 3]) != \
        ScoreCache(seed=2).candidate_digest([1, 2, 3])
    assert ScoreCache(seed=1).candidate_digest([1, 2, 3]) == \
        ScoreCache(seed=1).candidate_digest([1, 2, 3])


def test_lru_eviction():
    cache = ScoreCache(maxsize=2)
    cache.store("s", 0, [1], [1])
    cache.store("s", 0, [2], [2])
    cache.lookup("s", 0, [1])          # refresh entry [1]
    cache.store("s", 0, [3], [3])      # evicts [2], the least recent
    assert cache.lookup("s", 0, [1]) == [1]
    assert cache.lookup("s", 0, [2]) is None
    assert cache.lookup("s", 0, [3]) == [3]
    with pytest.raises(ConfigurationError):
        ScoreCache(maxsize=0)


def test_manual_and_mobility_invalidation(small_underlay):
    ids = small_underlay.host_ids()
    cached = CachedSelection(LatencySelection.from_underlay(small_underlay))
    cached.rank(ids[0], ids[1:8])
    assert len(cached.cache) == 1
    cached.cache.note_mobility(ids[3])
    assert len(cached.cache) == 0
    assert cached.cache.invalidations == 1
    cached.rank(ids[0], ids[1:8])
    cached.cache.invalidate()
    assert len(cached.cache) == 0


def test_churn_arrival_invalidates(small_underlay):
    ids = small_underlay.host_ids()
    sim = Simulation()
    joined = []
    churn = ChurnProcess(
        sim,
        peers=ids[:5],
        config=ChurnConfig(mean_session=500.0, mean_offline=100.0),
        on_join=joined.append,
        on_leave=lambda p: None,
        rng=1,
    )
    cache = ScoreCache()
    cache.watch_churn(churn)
    cached = CachedSelection(
        LatencySelection.from_underlay(small_underlay), cache
    )
    cached.rank(ids[0], ids[1:8])
    assert len(cache) == 1
    churn.start(warmup=5.0)
    sim.run(until=50.0)
    assert joined  # the original callback still fires
    assert len(cache) == 0 and cache.invalidations >= len(joined)


def test_coordinate_tick_invalidates(small_underlay):
    ids = small_underlay.host_ids()
    sim = Simulation()
    bus, _ = small_underlay.message_bus(sim, with_accounting=False)
    service = VivaldiGossipService(
        small_underlay, sim, bus,
        participants=ids[:6], probe_period_ms=100.0, rng=3,
    )
    cache = ScoreCache()
    cache.watch_coordinates(service)
    cached = CachedSelection(
        LatencySelection(
            service.estimate, batch_predictor=service.estimate_many
        ),
        cache,
    )
    sim.run(until=500.0)
    assert service.samples_processed > 0
    cached.rank(ids[0], ids[1:6])
    assert len(cache) == 1
    invalidations_before = cache.invalidations
    sim.run(until=1_000.0)
    assert cache.invalidations > invalidations_before
    assert len(cache) == 0
    service.stop()


def test_randomised_strategies_refused(small_underlay):
    with pytest.raises(ConfigurationError):
        CachedSelection(RandomSelection(1))
    jittered = ISPLocalitySelection(
        small_underlay, oracle=ISPOracle(small_underlay, rng=4)
    )
    with pytest.raises(ConfigurationError):
        CachedSelection(jittered)
    composite = CompositeSelection(
        [
            (ResourceSelection.from_underlay(small_underlay), 0.5),
            (RandomSelection(2), 0.5),
        ]
    )
    with pytest.raises(ConfigurationError):
        CachedSelection(composite)
    # deterministic oracle path is fine
    CachedSelection(
        ISPLocalitySelection(small_underlay, oracle=ISPOracle(small_underlay))
    )


def test_cache_metrics_on_active_registry(small_underlay):
    from repro.obs.export import registry_to_dict

    ids = small_underlay.host_ids()
    cached = CachedSelection(LatencySelection.from_underlay(small_underlay))
    with obs.observe() as session:
        cached.rank(ids[0], ids[1:10])
        cached.rank(ids[0], ids[1:10])
        cached.cache.invalidate()
        data = registry_to_dict(session.registry)
    hits = data["selection_cache_hits_total"]["values"]
    assert hits["selector=latency,event=miss"] == 1
    assert hits["selector=latency,event=hit"] == 1
    assert hits["selector=manual,event=invalidate"] == 1
    rank_seconds = data["selection_rank_seconds"]["values"]
    assert rank_seconds["selector=latency"]["count"] == 1  # miss path timed


def test_shared_cache_distinguishes_selectors(small_underlay):
    ids = small_underlay.host_ids()
    cache = ScoreCache()
    lat = CachedSelection(LatencySelection.from_underlay(small_underlay), cache)
    res = CachedSelection(ResourceSelection.from_underlay(small_underlay), cache)
    cand = ids[1:12]
    assert lat.rank(ids[0], cand) == \
        LatencySelection.from_underlay(small_underlay).rank(ids[0], cand)
    assert res.rank(ids[0], cand) == \
        ResourceSelection.from_underlay(small_underlay).rank(ids[0], cand)
    assert cache.misses == 2 and cache.hits == 0
