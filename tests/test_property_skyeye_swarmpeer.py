"""Property tests: SkyEye aggregation correctness and SwarmPeer choking."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import SkyEyeOverlay
from repro.underlay import PeerResources

resources = st.builds(
    PeerResources,
    bandwidth_down_kbps=st.floats(min_value=0, max_value=1e5),
    bandwidth_up_kbps=st.floats(min_value=0, max_value=1e5),
    cpu_ops=st.floats(min_value=0, max_value=10),
    storage_gb=st.floats(min_value=0, max_value=1000),
    memory_mb=st.floats(min_value=0, max_value=1e4),
    avg_online_hours=st.floats(min_value=0, max_value=24),
)


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=200), resources,
        min_size=1, max_size=40,
    ),
    st.integers(min_value=2, max_value=6),
)
def test_skyeye_root_view_matches_brute_force(reports, branching):
    peers = sorted(reports)
    sky = SkyEyeOverlay(peers, branching=branching, top_k=5)
    for p, res in reports.items():
        sky.report(p, res)
    view = sky.run_aggregation_round()
    # count and sums match exact aggregation
    assert view.count == len(reports)
    expected_up = sum(r.bandwidth_up_kbps for r in reports.values())
    assert np.isclose(view.sums["bandwidth_up_kbps"], expected_up)
    expected_max = max(r.storage_gb for r in reports.values())
    assert np.isclose(view.maxima["storage_gb"], expected_max)
    # top-k matches brute force on capacity score (ties by peer id may
    # reorder equal scores; compare score multisets)
    brute = sorted(
        (reports[p].capacity_score() for p in peers), reverse=True
    )[:5]
    got = sorted(
        (reports[p].capacity_score() for p in sky.top_capacity_peers(5)),
        reverse=True,
    )
    assert np.allclose(got, brute[: len(got)])


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=100), resources,
        min_size=2, max_size=25,
    ),
)
def test_skyeye_aggregation_idempotent(reports):
    peers = sorted(reports)
    sky = SkyEyeOverlay(peers, branching=3)
    for p, res in reports.items():
        sky.report(p, res)
    v1 = sky.run_aggregation_round()
    v2 = sky.run_aggregation_round()
    assert v1.count == v2.count
    assert np.isclose(
        v1.sums["bandwidth_up_kbps"], v2.sums["bandwidth_up_kbps"]
    )
