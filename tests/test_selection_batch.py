"""Batch-vs-scalar equivalence for the selection engine.

Every built-in strategy and the ISP oracle keep a per-candidate
reference path (``rank_scalar`` / ``rank_reference``); these tests
assert the batched ``rank``/``top_k``/``score_many`` paths reproduce it
**bit-identically** — same orderings, same tie-breaks, same RNG draw
order — across multiple seeds, candidate sizes, and edge cases
(duplicates, empty lists, singletons).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection.oracle import ISPOracle, OraclePolicy
from repro.coords.gnp import GNPConfig, GNPSystem
from repro.coords.ics import PAPER_EXAMPLE_MATRIX, ICS
from repro.coords.vivaldi import VivaldiSystem
from repro.core.selection import (
    CompositeSelection,
    GeoSelection,
    ISPLocalitySelection,
    LatencySelection,
    RandomSelection,
    ResourceSelection,
)
from repro.errors import ConfigurationError

SEEDS = [0, 11, 42]


def _candidates(underlay, seed, size=40, dupes=True):
    rng = np.random.default_rng(seed)
    ids = underlay.host_ids()
    cand = [int(c) for c in rng.choice(ids, size=size, replace=dupes)]
    querier = int(rng.choice(ids))
    return querier, cand


class _TrueMapping:
    """IP-to-ISP stub that answers from the underlay and counts lookups."""

    def __init__(self, underlay):
        self.underlay = underlay
        self.calls = 0

    def lookup(self, host_id):
        self.calls += 1
        return self.underlay.asn_of(host_id)


def _builtin_selectors(underlay):
    """name -> factory returning a *fresh* selector (RNG state matters)."""
    return {
        "latency": lambda: LatencySelection.from_underlay(underlay),
        "geolocation": lambda: GeoSelection(
            lambda hid: underlay.host(hid).position
        ),
        "peer-resources": lambda: ResourceSelection.from_underlay(underlay),
        "isp-mapping": lambda: ISPLocalitySelection(
            underlay, mapping=_TrueMapping(underlay)
        ),
        "isp-oracle": lambda: ISPLocalitySelection(
            underlay, oracle=ISPOracle(underlay)
        ),
        "random": lambda: RandomSelection(7),
        "composite": lambda: CompositeSelection(
            [
                (LatencySelection.from_underlay(underlay), 0.5),
                (ResourceSelection.from_underlay(underlay), 0.3),
                (GeoSelection(lambda hid: underlay.host(hid).position), 0.2),
            ]
        ),
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name",
    [
        "latency", "geolocation", "peer-resources",
        "isp-mapping", "isp-oracle", "random", "composite",
    ],
)
def test_rank_matches_scalar_reference(small_underlay, name, seed):
    querier, cand = _candidates(small_underlay, seed)
    factories = _builtin_selectors(small_underlay)
    batch = factories[name]()
    reference = factories[name]()
    assert batch.rank(querier, cand) == reference.rank_scalar(querier, cand)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name",
    [
        "latency", "geolocation", "peer-resources",
        "isp-mapping", "isp-oracle", "random", "composite",
    ],
)
@pytest.mark.parametrize("k", [0, 1, 3, 1000])
def test_top_k_is_rank_prefix(small_underlay, name, seed, k):
    querier, cand = _candidates(small_underlay, seed)
    factories = _builtin_selectors(small_underlay)
    top = factories[name]().top_k(querier, cand, k)
    full = factories[name]().rank(querier, cand)
    assert top == full[:k]


@pytest.mark.parametrize(
    "name",
    [
        "latency", "geolocation", "peer-resources",
        "isp-mapping", "isp-oracle", "random", "composite",
    ],
)
def test_edge_cases_empty_single_duplicates(small_underlay, name):
    factories = _builtin_selectors(small_underlay)
    ids = small_underlay.host_ids()
    q = ids[0]
    assert factories[name]().rank(q, []) == []
    assert factories[name]().top_k(q, [], 3) == []
    assert factories[name]().rank(q, [ids[1]]) == [ids[1]]
    # duplicates collapse to first occurrence, identically on both paths
    dupes = [ids[1], ids[2], ids[1], ids[3], ids[2], ids[1]]
    assert factories[name]().rank(q, dupes) == \
        factories[name]().rank_scalar(q, dupes)
    with pytest.raises(ConfigurationError):
        factories[name]().top_k(q, dupes, -1)


def test_select_routes_through_top_k(small_underlay):
    ids = small_underlay.host_ids()
    sel = LatencySelection.from_underlay(small_underlay)
    assert sel.select(ids[0], ids[1:], 4) == sel.rank(ids[0], ids[1:])[:4]


def test_score_many_orders_like_rank(small_underlay):
    querier, cand = _candidates(small_underlay, 1, dupes=False)
    for name, factory in _builtin_selectors(small_underlay).items():
        if name == "random":
            continue  # scores draw RNG; ordering asserted elsewhere
        sel = factory()
        scores = sel.score_many(querier, cand)
        key = (lambda i: (scores[i], cand[i])) if name == "composite" else (
            lambda i: (scores[i], i)
        )
        order = sorted(range(len(cand)), key=key)
        assert [cand[i] for i in order] == factory().rank(querier, cand)


# -- oracle ------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", list(OraclePolicy))
@pytest.mark.parametrize("jitter", [None, 13])
def test_oracle_rank_matches_reference(small_underlay, seed, policy, jitter):
    querier, cand = _candidates(small_underlay, seed)
    batch = ISPOracle(small_underlay, policy=policy, rng=jitter)
    reference = ISPOracle(small_underlay, policy=policy, rng=jitter)
    assert batch.rank(querier, cand) == reference.rank_reference(querier, cand)
    # identical RNG draw order: a second ranking still agrees
    assert batch.rank(querier, cand) == reference.rank_reference(querier, cand)


@pytest.mark.parametrize("policy", list(OraclePolicy))
@pytest.mark.parametrize("jitter", [None, 13])
def test_oracle_top_k_is_rank_prefix(small_underlay, policy, jitter):
    querier, cand = _candidates(small_underlay, 2)
    a = ISPOracle(small_underlay, policy=policy, rng=jitter)
    b = ISPOracle(small_underlay, policy=policy, rng=jitter)
    for k in (0, 1, 4, len(cand) + 5):
        assert a.top_k(querier, cand, k) == b.rank(querier, cand)[:k]


def test_oracle_best_single_scan_and_overhead(small_underlay):
    """Satellite regression: ``best`` charges exactly one full-list
    ranking and never touches the per-pair routing path or a sort."""
    querier, cand = _candidates(small_underlay, 3, size=30)
    oracle = ISPOracle(small_underlay)
    reference = ISPOracle(small_underlay)
    expected = reference.rank(querier, cand)[0]

    per_pair_calls = []
    original_hops = small_underlay.routing.hops
    small_underlay.routing.hops = lambda s, d: (
        per_pair_calls.append((s, d)) or original_hops(s, d)
    )
    try:
        got = oracle.best(querier, cand)
    finally:
        small_underlay.routing.hops = original_hops

    assert got == expected
    assert per_pair_calls == []  # batch row gather, no per-pair lookups
    # the peer still ships its whole hostcache: same charge as rank()
    assert oracle.overhead.queries == reference.overhead.queries == 1
    assert oracle.overhead.messages == reference.overhead.messages == 2
    assert oracle.overhead.bytes_on_wire == reference.overhead.bytes_on_wire
    assert oracle.lists_ranked == 1
    assert oracle.candidates_ranked == len(cand)
    assert oracle.best(querier, []) is None


def test_oracle_limit_applies_before_ranking(small_underlay):
    querier, cand = _candidates(small_underlay, 4, size=20)
    a = ISPOracle(small_underlay)
    b = ISPOracle(small_underlay)
    assert a.top_k(querier, cand, 3, limit=8) == \
        b.rank(querier, cand, limit=8)[:3]
    assert a.candidates_ranked == b.candidates_ranked == 8


# -- ISP mapping memoisation (satellite) -------------------------------------


def test_mapping_lookups_memoised_within_call(small_underlay):
    """n distinct candidates cost exactly n + 1 lookups (querier + one
    per distinct candidate) regardless of duplication."""
    ids = small_underlay.host_ids()
    mapping = _TrueMapping(small_underlay)
    sel = ISPLocalitySelection(small_underlay, mapping=mapping)
    distinct = ids[1:9]
    cand = list(distinct) * 3  # heavy duplication
    sel.rank(ids[0], cand)
    assert mapping.calls == len(distinct) + 1
    mapping.calls = 0
    sel.top_k(ids[0], cand, 2)
    assert mapping.calls == len(distinct) + 1
    # querier appearing among the candidates is looked up once, not twice
    mapping.calls = 0
    sel.rank(ids[0], [ids[0], ids[1]])
    assert mapping.calls == 2


# -- composite tie-breaking (satellite) --------------------------------------


def test_composite_ties_break_by_candidate_id(small_underlay):
    """Two opposite-order components give every candidate the same fused
    Borda score (positions sum to n-1); the ranking must then be
    ascending host id on both paths, regardless of input order."""
    ids = small_underlay.host_ids()
    ascending = ResourceSelection(lambda hid: -float(hid))
    descending = ResourceSelection(lambda hid: float(hid))
    comp = CompositeSelection([(ascending, 1.0), (descending, 1.0)])
    cand = [ids[5], ids[2], ids[9], ids[1]]
    expected = sorted(cand)
    assert comp.rank(ids[0], cand) == expected
    assert comp.rank_scalar(ids[0], cand) == expected
    assert comp.top_k(ids[0], cand, 2) == expected[:2]


def test_composite_order_independent_of_input_order(small_underlay):
    querier, cand = _candidates(small_underlay, 5, dupes=False)
    factory = _builtin_selectors(small_underlay)["composite"]
    forward = factory().rank(querier, cand)
    backward = factory().rank(querier, list(reversed(cand)))
    assert forward == backward


# -- coordinate systems: estimate_many bit-identity --------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_vivaldi_estimate_many_bit_identical(small_underlay, seed):
    rtt = small_underlay.rtt_matrix()[:25, :25].copy()
    np.fill_diagonal(rtt, 0.0)
    system = VivaldiSystem(rtt, rng=seed)
    system.run(rounds=10, neighbors_per_round=4)
    dsts = list(range(25))
    batch = system.estimate_many(3, dsts)
    assert [float(x) for x in batch] == [system.estimate(3, j) for j in dsts]
    assert system.estimate_many(3, []).shape == (0,)


def test_gnp_and_ics_estimate_many_bit_identical():
    ics = ICS(PAPER_EXAMPLE_MATRIX)
    dsts = [0, 1, 2, 3, 0]
    assert [float(x) for x in ics.estimate_many(1, dsts)] == [
        ics.estimate(1, j) for j in dsts
    ]
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 100, size=(6, 2))
    d = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))
    gnp = GNPSystem(d, GNPConfig(dim=2, restarts=1), seed=1)
    assert [float(x) for x in gnp.estimate_many(2, dsts)] == [
        gnp.estimate(2, j) for j in dsts
    ]


def test_default_estimate_many_falls_back_to_scalar():
    from repro.coords.base import CoordinateSystem

    class Fixed(CoordinateSystem):
        def coordinates(self):
            return np.zeros((3, 2))

        def estimate(self, i, j):
            return float(10 * i + j)

    assert list(Fixed().estimate_many(2, [0, 1, 2])) == [20.0, 21.0, 22.0]
