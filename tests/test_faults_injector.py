"""Fault injector behaviour: windows, scopes, partitions, crashes, and
the zero-cost-when-idle guarantee (bit-for-bit identical traces)."""

import pytest

from repro import obs
from repro.errors import FaultError
from repro.faults import (
    CrashFault,
    DelayFault,
    FaultInjector,
    FaultSchedule,
    LossFault,
    PartitionFault,
)
from repro.sim import ChurnConfig, ChurnProcess, MessageBus, Simulation


class FixedLatency:
    def one_way_delay(self, src, dst):
        return 1.0


def _bus(sim):
    return MessageBus(sim, FixedLatency())


def test_needs_asn_requires_resolver():
    sim = Simulation()
    sched = FaultSchedule(
        (PartitionFault(start=0, end=1, groups=(frozenset({1}),)),)
    )
    with pytest.raises(FaultError):
        FaultInjector(sim, _bus(sim), sched)


def test_double_start_rejected():
    sim = Simulation()
    inj = FaultInjector(sim, _bus(sim), FaultSchedule())
    inj.start()
    with pytest.raises(FaultError):
        inj.start()


def test_hard_link_loss_only_inside_window():
    sim = Simulation()
    bus = _bus(sim)
    got = []
    bus.register(2, got.append)
    sched = FaultSchedule(
        (LossFault(start=10.0, end=20.0, rate=1.0, src=1, dst=2),)
    )
    inj = FaultInjector(sim, bus, sched)
    inj.start()
    for t in (5.0, 15.0, 25.0):
        sim.schedule_at(t, bus.send, 1, 2, "X")
    sim.run()
    # only the t=15 send falls in the window
    assert len(got) == 2
    assert bus.stats.dropped_fault == 1
    assert inj.stats.messages_dropped == 1
    assert inj.stats.activations == inj.stats.deactivations == 1
    assert not inj.active_faults


def test_partition_drops_cross_traffic_only():
    sim = Simulation()
    bus = _bus(sim)
    got = []
    for hid in (1, 2, 3):
        bus.register(hid, got.append)
    asn = {1: 10, 2: 10, 3: 20}
    sched = FaultSchedule(
        (PartitionFault(start=0.0, end=100.0, groups=(frozenset({10}),)),)
    )
    inj = FaultInjector(sim, bus, sched, asn_of=asn.__getitem__)
    inj.start()
    sim.schedule_at(5.0, bus.send, 1, 2, "INTRA")
    sim.schedule_at(5.0, bus.send, 1, 3, "CROSS")
    sim.schedule_at(5.0, bus.send, 3, 1, "CROSS")
    sim.run()
    assert [m.kind for m in got] == ["INTRA"]
    assert inj.stats.messages_dropped == 2


def test_delay_fault_adds_latency():
    sim = Simulation()
    bus = _bus(sim)
    arrivals = []
    bus.register(2, lambda m: arrivals.append(sim.now))
    sched = FaultSchedule((DelayFault(start=0.0, end=50.0, extra_ms=80.0),))
    inj = FaultInjector(sim, bus, sched)
    inj.start()
    sim.schedule_at(10.0, bus.send, 1, 2, "X")   # in window: 1 + 80 ms
    sim.schedule_at(60.0, bus.send, 1, 2, "X")   # after: 1 ms
    sim.run()
    assert arrivals == [61.0, 91.0]  # delivery order follows arrival time
    assert inj.stats.messages_delayed == 1


def test_probabilistic_loss_is_seeded_and_partial():
    def run(seed):
        sim = Simulation()
        bus = _bus(sim)
        got = []
        bus.register(2, got.append)
        sched = FaultSchedule((LossFault(start=0.0, end=1e6, rate=0.4),))
        inj = FaultInjector(sim, bus, sched, seed=seed)
        inj.start()
        for i in range(400):
            sim.schedule_at(1.0 + i, bus.send, 1, 2, "X")
        sim.run()
        return len(got), inj.stats.messages_dropped

    delivered_a, dropped_a = run(seed=3)
    delivered_b, dropped_b = run(seed=3)
    assert (delivered_a, dropped_a) == (delivered_b, dropped_b)
    assert 0.3 * 400 < dropped_a < 0.5 * 400
    delivered_c, _ = run(seed=4)
    assert delivered_c != delivered_a  # different seed, different pattern


def test_crash_unregisters_peer_and_recovery_fires():
    sim = Simulation()
    bus = _bus(sim)
    got = []
    bus.register(2, got.append)
    recovered = []
    sched = FaultSchedule(
        (CrashFault(at=10.0, peers=(2,), recover_at=30.0),)
    )
    inj = FaultInjector(sim, bus, sched, on_recover=recovered.append)
    inj.start()
    sim.schedule_at(5.0, bus.send, 1, 2, "BEFORE")
    sim.schedule_at(15.0, bus.send, 1, 2, "DURING")  # dead: no receiver
    sim.run()
    assert [m.kind for m in got] == ["BEFORE"]
    assert bus.stats.dropped_no_handler == 1
    assert recovered == [2]
    assert inj.stats.crashes == 1 and inj.stats.recoveries == 1


def test_crash_silences_churn_without_on_leave():
    sim = Simulation()
    events = []
    churn = ChurnProcess(
        sim,
        peers=["p"],
        config=ChurnConfig(mean_session=1e9, mean_offline=1e9),
        on_join=lambda p: events.append("join"),
        on_leave=lambda p: events.append("leave"),
        rng=1,
    )
    churn.start(warmup=0.0)
    sched = FaultSchedule((CrashFault(at=50.0, peers=("p",), recover_at=80.0),))
    inj = FaultInjector(sim, _bus(sim), sched, churn=churn)
    inj.start()
    sim.run(until=100.0)
    # join (start), crash (no leave event), revive -> join again
    assert events == ["join", "join"]
    assert churn.crashes == 1


def test_past_window_activates_and_deactivates_cleanly():
    sim = Simulation()
    bus = _bus(sim)
    sim.schedule(100.0, lambda: None)
    sim.run()  # clock now at 100, past the whole window
    sched = FaultSchedule((LossFault(start=10.0, end=20.0, rate=1.0),))
    inj = FaultInjector(sim, bus, sched)
    inj.start()
    sim.run()
    assert inj.stats.activations == inj.stats.deactivations == 1
    assert not inj.active_faults


def test_empty_schedule_is_bit_for_bit_free():
    """An idle injector changes nothing: same seed, same trace digest,
    with and without the injector attached."""

    def run(with_injector):
        with obs.observe() as session:
            sim = Simulation()
            bus = MessageBus(sim, FixedLatency(), loss_rate=0.2, loss_seed=7)
            bus.register(2, lambda m: None)
            if with_injector:
                FaultInjector(sim, bus, FaultSchedule()).start()
            for i in range(300):
                sim.schedule_at(float(i + 1), bus.send, 1, 2, "X")
            sim.run()
        return session.tracer.digest(), session.tracer.emitted

    digest_plain, emitted_plain = run(with_injector=False)
    digest_idle, emitted_idle = run(with_injector=True)
    assert emitted_plain > 500
    assert (digest_idle, emitted_idle) == (digest_plain, emitted_plain)


def test_injector_metrics_and_trace_events():
    with obs.observe() as session:
        sim = Simulation()
        bus = _bus(sim)
        sched = FaultSchedule((
            LossFault(start=0.0, end=10.0, rate=1.0),
            CrashFault(at=5.0, peers=(9,)),
        ))
        FaultInjector(sim, bus, sched).start()
        sim.run()
    counter = session.registry.get("faults_injected_total")
    assert counter.value(kind="loss") == 1
    assert counter.value(kind="crash") == 1
    actions = [e.kind for e in session.tracer if e.component == "fault"]
    assert actions == ["activate", "crash", "deactivate"]
