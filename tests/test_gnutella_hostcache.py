"""Unit tests for the Gnutella hostcache."""

import pytest

from repro.errors import OverlayError
from repro.overlay.gnutella import HostCache


def test_add_and_contains():
    hc = HostCache(capacity=5)
    hc.add(1)
    hc.add(2)
    assert 1 in hc and 2 in hc
    assert len(hc) == 2


def test_eviction_of_oldest():
    hc = HostCache(capacity=3)
    for p in (1, 2, 3, 4):
        hc.add(p)
    assert 1 not in hc
    assert set(hc.snapshot()) == {2, 3, 4}


def test_readd_moves_to_back():
    hc = HostCache(capacity=3)
    for p in (1, 2, 3):
        hc.add(p)
    hc.add(1)  # refresh
    hc.add(4)  # evicts 2, the now-oldest
    assert 1 in hc and 2 not in hc


def test_snapshot_most_recent_first_with_limit():
    hc = HostCache(capacity=10)
    for p in range(6):
        hc.add(p)
    assert hc.snapshot() == [5, 4, 3, 2, 1, 0]
    assert hc.snapshot(limit=2) == [5, 4]


def test_fill_random_distinct_subset():
    hc = HostCache(capacity=100)
    hc.fill_random(list(range(1000)), 50, rng=1)
    snap = hc.snapshot()
    assert len(snap) == 50
    assert len(set(snap)) == 50


def test_fill_random_respects_capacity():
    hc = HostCache(capacity=10)
    hc.fill_random(list(range(100)), 50, rng=2)
    assert len(hc) == 10


def test_remove():
    hc = HostCache()
    hc.add(7)
    hc.remove(7)
    hc.remove(8)  # absent: no error
    assert 7 not in hc


def test_zero_capacity_rejected():
    with pytest.raises(OverlayError):
        HostCache(capacity=0)
