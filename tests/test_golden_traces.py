"""Golden-trace regression tests.

Run a full scenario under the observability layer twice with the same
seed and assert the trace digests are identical — any refactor that
changes *behaviour* (message order, event schedule, lookup paths), not
just outputs, flips the digest.  Then run with a different seed and
assert the digest *changes*, which guards the other failure mode: a
digest that ignores the event stream would pass the determinism check
vacuously.

These scenarios are deliberately small (seconds, not minutes); the
digest covers every sim schedule/fire/cancel and every bus send/deliver,
so even the small runs fingerprint hundreds of thousands of events.
"""

from __future__ import annotations

import functools

from repro.experiments import observability
from repro.experiments.fig5_gnutella_oracle import run_fig5
from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


@functools.lru_cache(maxsize=None)
def _fig5_trace_once(seed: int, repeat: int) -> tuple[str, int]:
    # ``repeat`` only distinguishes independent runs of the same seed
    with observability() as session:
        run_fig5(n_hosts=60, cache_fill=40, seed=seed)
    return session.tracer.digest(), session.tracer.emitted


def _kademlia_trace(seed: int) -> tuple[str, int]:
    with observability() as session:
        underlay = Underlay.generate(UnderlayConfig(n_hosts=30, seed=seed))
        sim = Simulation()
        bus, _acct = underlay.message_bus(sim)
        net = KademliaNetwork(
            underlay, sim, bus, config=KademliaConfig(k=4, alpha=2), rng=seed
        )
        net.add_all_hosts()
        net.bootstrap_all()
        sim.run()
        net.run_value_workload(n_publishes=5, n_lookups=10)
    return session.tracer.digest(), session.tracer.emitted


def test_fig5_gnutella_oracle_trace_is_deterministic():
    digest_a, emitted_a = _fig5_trace_once(11, 0)
    digest_b, emitted_b = _fig5_trace_once(11, 1)
    assert emitted_a > 10_000  # the digest actually covers the run
    assert emitted_a == emitted_b
    assert digest_a == digest_b


def test_fig5_gnutella_oracle_trace_tracks_the_seed():
    digest_a, _ = _fig5_trace_once(11, 0)
    digest_c, _ = _fig5_trace_once(12, 0)
    assert digest_a != digest_c


def test_kademlia_lookup_trace_is_deterministic():
    digest_a, emitted_a = _kademlia_trace(seed=3)
    digest_b, emitted_b = _kademlia_trace(seed=3)
    assert emitted_a > 1_000
    assert emitted_a == emitted_b
    assert digest_a == digest_b


def test_kademlia_lookup_trace_tracks_the_seed():
    digest_a, _ = _kademlia_trace(seed=3)
    digest_c, _ = _kademlia_trace(seed=4)
    assert digest_a != digest_c


def test_trace_digest_survives_ring_eviction():
    """The running digest covers evicted events: a tiny ring and a huge
    ring over the same scenario agree."""
    from repro import obs

    def run(capacity: int) -> str:
        tracer = obs.Tracer(capacity=capacity)
        with obs.observe(tracer=tracer):
            sim = Simulation()
            for i in range(500):
                sim.schedule(float(i), lambda: None)
            sim.run()
        return tracer.digest()

    assert run(capacity=16) == run(capacity=1 << 16)
