"""Unit tests for the UnderlayAwarenessFramework and QoS profiles."""

import pytest

from repro.collection import (
    GPSService,
    IPToISPMapping,
    IPToLocationMapping,
    ISPOracle,
    PingService,
    SkyEyeOverlay,
    UnderlayInfoType,
)
from repro.core import (
    BUILTIN_PROFILES,
    FILE_SHARING,
    LOCATION_SERVICES,
    REAL_TIME,
    QoSProfile,
    UnderlayAwarenessFramework,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def fw(dense_underlay):
    u = dense_underlay
    f = UnderlayAwarenessFramework(u)
    f.use_oracle(ISPOracle(u))
    f.use_true_latency()
    f.use_gps(GPSService(u, availability=1.0))
    f.use_resource_records()
    return u, f


def test_profiles_validate():
    with pytest.raises(ConfigurationError):
        QoSProfile("empty", {})
    with pytest.raises(ConfigurationError):
        QoSProfile("neg", {UnderlayInfoType.LATENCY: -1.0})
    for p in BUILTIN_PROFILES:
        assert p.weights


def test_available_info_tracks_registration(dense_underlay):
    f = UnderlayAwarenessFramework(dense_underlay)
    assert f.available_info() == set()
    f.use_true_latency()
    assert f.available_info() == {UnderlayInfoType.LATENCY}


def test_missing_service_raises(dense_underlay):
    f = UnderlayAwarenessFramework(dense_underlay)
    with pytest.raises(ConfigurationError):
        f.selector_for(REAL_TIME)


def test_select_neighbors_full_stack(fw):
    u, f = fw
    ids = u.host_ids()
    for profile in BUILTIN_PROFILES:
        picked = f.select_neighbors(ids[0], ids[1:], k=6, profile=profile)
        assert len(picked) == 6
        assert len(set(picked)) == 6
        assert ids[0] not in picked


def test_real_time_profile_prefers_low_latency(fw):
    u, f = fw
    ids = u.host_ids()
    picked = f.select_neighbors(ids[0], ids[1:], k=5, profile=REAL_TIME)
    rtts = [u.one_way_delay(ids[0], c) for c in picked]
    all_rtts = sorted(u.one_way_delay(ids[0], c) for c in ids[1:])
    # picked neighbours sit in the cheap tail of the distribution
    assert max(rtts) <= all_rtts[len(all_rtts) // 3]


def test_file_sharing_profile_prefers_locality(fw):
    u, f = fw
    ids = u.host_ids()
    picked = f.select_neighbors(ids[0], ids[1:], k=5, profile=FILE_SHARING)
    my_asn = u.asn_of(ids[0])
    hops = [u.routing.hops(my_asn, u.asn_of(c)) for c in picked]
    assert min(hops) == 0  # dense underlay: same-AS candidates exist and win


def test_alternative_sources(dense_underlay):
    u = dense_underlay
    f = UnderlayAwarenessFramework(u)
    f.use_ip_mapping(IPToISPMapping(u))
    f.use_ping(PingService(u, rng=1))
    f.use_ip_location(IPToLocationMapping(u))
    sky = SkyEyeOverlay(u.host_ids())
    f.use_skyeye(sky)
    assert f.available_info() == set(UnderlayInfoType)
    ids = u.host_ids()
    picked = f.select_neighbors(ids[0], ids[1:20], k=4, profile=LOCATION_SERVICES)
    assert len(picked) == 4


def test_overhead_report_aggregates(fw):
    u, f = fw
    ids = u.host_ids()
    f.select_neighbors(ids[0], ids[1:], k=3, profile=FILE_SHARING)
    report = f.overhead_report()
    assert "ISPOracle" in report
    assert f.total_overhead_bytes() >= report["ISPOracle"].bytes_on_wire


def test_baseline_selector_is_random(fw):
    u, f = fw
    ids = u.host_ids()
    out = f.baseline_selector(rng=1).rank(ids[0], ids[1:10])
    assert sorted(out) == sorted(ids[1:10])
