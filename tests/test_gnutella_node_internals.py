"""Unit tests for Gnutella node message-handling edge cases."""

import pytest

from repro.errors import OverlayError
from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork, LEAF, ULTRAPEER
from repro.overlay.gnutella.messages import Ping, Query
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture()
def tiny_net():
    u = Underlay.generate(UnderlayConfig(n_hosts=12, seed=51))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    net = GnutellaNetwork(u, sim, bus, config=GnutellaConfig(query_ttl=3), rng=1)
    # deterministic roles: first 4 ultrapeers, rest leaves
    for i, h in enumerate(u.hosts):
        net.add_node(h, ULTRAPEER if i < 4 else LEAF)
    net.bootstrap(cache_fill=11)
    net.join_all()
    sim.run()
    return u, sim, net


def test_duplicate_query_not_reflooded(tiny_net):
    _u, sim, net = tiny_net
    ups = net.ultrapeers()
    a, b = ups[0], ups[1]
    query = Query(guid=90_001, ttl=3, keyword=5, origin=a.host_id)
    net.register_query(90_001, a.host_id, 5)
    b._dispatch_count_before = dict(b.sent_counts)
    # deliver the same query twice by hand
    from repro.sim.messages import Message

    msg = Message(src=a.host_id, dst=b.host_id, kind="QUERY", payload=query)
    b._dispatch(msg)
    sent_after_first = b.sent_counts.get("QUERY", 0)
    b._dispatch(msg)
    assert b.sent_counts.get("QUERY", 0) == sent_after_first  # dup dropped


def test_ttl_one_query_not_forwarded(tiny_net):
    _u, sim, net = tiny_net
    ups = net.ultrapeers()
    a, b = ups[0], ups[1]
    from repro.sim.messages import Message

    query = Query(guid=90_002, ttl=1, keyword=6, origin=a.host_id)
    net.register_query(90_002, a.host_id, 6)
    before = b.sent_counts.get("QUERY", 0)
    b._dispatch(Message(src=a.host_id, dst=b.host_id, kind="QUERY", payload=query))
    assert b.sent_counts.get("QUERY", 0) == before  # answered, not forwarded


def test_ping_answered_with_pong_burst(tiny_net):
    _u, sim, net = tiny_net
    ups = net.ultrapeers()
    a, b = ups[0], ups[1]
    # prime b's pong cache
    for hid in list(net.nodes)[:6]:
        if hid != b.host_id:
            b._learn_address(hid)
    from repro.sim.messages import Message

    before = b.sent_counts.get("PONG", 0)
    ping = Ping(guid=90_003, ttl=1, origin=a.host_id)
    b._dispatch(Message(src=a.host_id, dst=b.host_id, kind="PING", payload=ping))
    burst = b.sent_counts.get("PONG", 0) - before
    assert 1 <= burst <= b.config.pongs_per_ping


def test_offline_node_send_raises(tiny_net):
    _u, _sim, net = tiny_net
    node = net.leaves()[0]
    node.go_offline()
    with pytest.raises(OverlayError):
        node.send(net.ultrapeers()[0].host_id, "PING", None)


def test_unknown_message_kind_raises(tiny_net):
    _u, _sim, net = tiny_net
    from repro.sim.messages import Message

    node = net.ultrapeers()[0]
    with pytest.raises(OverlayError):
        node._dispatch(
            Message(src=1, dst=node.host_id, kind="NO_SUCH_KIND", payload=None)
        )


def test_share_before_connect_announced_at_connect():
    u = Underlay.generate(UnderlayConfig(n_hosts=12, seed=52))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    net = GnutellaNetwork(u, sim, bus, rng=2)
    for i, h in enumerate(u.hosts):
        net.add_node(h, ULTRAPEER if i < 4 else LEAF)
    # leaf gets content BEFORE joining
    leaf = net.leaves()[0]
    leaf.shared.add(777)
    net.bootstrap(cache_fill=11)
    net.join_all()
    sim.run()
    # its ultrapeers learned the content through the connect-time SHARE
    assert any(
        leaf.host_id in net.nodes[up].leaf_index.get(777, set())
        for up in leaf.neighbors
    )


def test_queryhit_route_evaporation_dropped_silently(tiny_net):
    _u, sim, net = tiny_net
    from repro.overlay.gnutella.messages import QueryHit
    from repro.sim.messages import Message

    node = net.ultrapeers()[0]
    # a hit for a guid this node never routed: must not raise
    hit = QueryHit(guid=99_999, responder=3, keyword=1)
    node._dispatch(
        Message(src=net.ultrapeers()[1].host_id, dst=node.host_id,
                kind="QUERYHIT", payload=hit)
    )


def test_leaf_does_not_accept_connections(tiny_net):
    _u, sim, net = tiny_net
    from repro.overlay.gnutella.messages import ConnectRequest
    from repro.sim.messages import Message

    leaf = net.leaves()[0]
    other = net.leaves()[1]
    before = set(leaf.neighbors)
    leaf._dispatch(
        Message(
            src=other.host_id, dst=leaf.host_id, kind="CONNECT_REQUEST",
            payload=ConnectRequest(peer=other.host_id, role=LEAF),
        )
    )
    sim.run()
    assert leaf.neighbors == before
    assert other.host_id not in leaf.leaves
