"""Integration tests for the Kademlia DHT."""

import numpy as np
import pytest

from repro.overlay.kademlia import (
    KademliaConfig,
    KademliaNetwork,
    key_for,
)
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def _build(n_hosts=40, seed=15, **cfg):
    u = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=seed))
    sim = Simulation()
    bus, acct = u.message_bus(sim)
    net = KademliaNetwork(u, sim, bus, config=KademliaConfig(**cfg), rng=seed)
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=60_000)
    return u, sim, net, acct


@pytest.fixture(scope="module")
def dht():
    return _build()


def test_bootstrap_populates_routing_tables(dht):
    _u, _sim, net, _a = dht
    sizes = [n.routing_table.size() for n in net.nodes.values()]
    assert min(sizes) >= 3
    assert np.mean(sizes) > 8


def test_find_node_converges_to_closest(dht):
    _u, sim, net, _a = dht
    ids = list(net.nodes)
    target = net.nodes[ids[7]].node_id
    results = []
    net.lookup_node(ids[0], target, results)
    sim.run(until=sim.now + 60_000)
    assert len(results) == 1
    res = results[0]
    assert res.closest, "lookup returned no contacts"
    # the true owner of the id should be the closest found
    assert res.closest[0].node_id == target


def test_store_and_find_value(dht):
    _u, sim, net, _a = dht
    ids = list(net.nodes)
    key = net.publish(ids[3], "movie.avi")
    sim.run(until=sim.now + 60_000)
    results = []
    net.lookup_value(ids[-1], key, results)
    sim.run(until=sim.now + 60_000)
    assert results[0].found_value
    assert ids[3] in results[0].values


def test_value_replicated_on_k_closest(dht):
    _u, sim, net, _a = dht
    ids = list(net.nodes)
    key = net.publish(ids[5], "rare-file")
    sim.run(until=sim.now + 60_000)
    holders = [
        n for n in net.nodes.values() if key in n.storage
    ]
    assert 1 <= len(holders) <= net.config.k
    # holders should be among the globally closest nodes to the key
    all_sorted = sorted(
        net.nodes.values(), key=lambda n: n.node_id ^ key
    )
    closest_ids = {n.node_id for n in all_sorted[: net.config.k + 2]}
    assert all(h.node_id in closest_ids for h in holders)


def test_local_hit_short_circuits(dht):
    _u, sim, net, _a = dht
    ids = list(net.nodes)
    key = key_for("local-content")
    net.nodes[ids[0]].storage[key] = {ids[0]}
    results = []
    net.lookup_value(ids[0], key, results)
    assert results and results[0].found_value
    assert results[0].rpcs_sent == 0


def test_workload_stats(dht):
    _u, _sim, net, _a = dht
    stats = net.run_value_workload(10, 30)
    assert stats.n == 30
    assert stats.success_rate >= 0.9
    assert stats.mean_rpcs > 0
    assert stats.median_latency_ms > 0


def test_lookup_survives_dead_nodes():
    u, sim, net, _a = _build(n_hosts=40, seed=16, rpc_timeout_ms=800.0)
    ids = list(net.nodes)
    key = net.publish(ids[0], "content-x")
    sim.run(until=sim.now + 60_000)
    # kill 20% of nodes (not the publisher or the querier)
    for hid in ids[10:18]:
        net.nodes[hid].go_offline()
    results = []
    net.lookup_value(ids[-1], key, results)
    sim.run(until=sim.now + 120_000)
    assert results, "lookup never terminated despite timeouts"
    res = results[0]
    # it either found the value or exhausted candidates, but terminated
    assert res.finished_at > res.started_at


def test_pns_reduces_contact_rtt():
    _u1, _s1, base, _ = _build(n_hosts=50, seed=17)
    base.run_value_workload(15, 40)
    _u2, _s2, pns, _ = _build(
        n_hosts=50, seed=17, proximity_buckets=True
    )
    pns.run_value_workload(15, 40)
    assert pns.mean_contact_rtt() < base.mean_contact_rtt()
