"""Public-API contract: every name in every package ``__all__`` resolves,
and the top-level façade re-exports what the README promises."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.runner",
    "repro.sim",
    "repro.faults",
    "repro.underlay",
    "repro.coords",
    "repro.collection",
    "repro.overlay",
    "repro.overlay.gnutella",
    "repro.overlay.kademlia",
    "repro.overlay.bittorrent",
    "repro.overlay.geo",
    "repro.overlay.superpeer",
    "repro.core",
    "repro.metrics",
    "repro.workloads",
    "repro.service",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_unique(package):
    mod = importlib.import_module(package)
    names = list(mod.__all__)
    assert names == sorted(names), f"{package}.__all__ is not sorted"
    assert len(names) == len(set(names)), f"{package}.__all__ has duplicates"


def test_readme_quickstart_names():
    import repro

    for name in ("Underlay", "UnderlayConfig", "UnderlayAwarenessFramework",
                 "Simulation", "__version__"):
        assert hasattr(repro, name)

    from repro.collection import GPSService, ISPOracle  # noqa: F401
    from repro.core import FILE_SHARING, REAL_TIME  # noqa: F401


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
