"""Property tests: P4P weighting and streaming-swarm invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import P4PService
from repro.overlay.streaming import SchedulerPolicy, StreamConfig, StreamingSwarm
from repro.underlay import Underlay, UnderlayConfig

_UNDERLAY = Underlay.generate(UnderlayConfig(n_hosts=40, seed=55))
_P4P = P4PService(_UNDERLAY)
_IDS = _UNDERLAY.host_ids()


@given(
    st.lists(st.sampled_from(_IDS), min_size=1, max_size=25),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_p4p_weights_form_distribution(cands, softness):
    q = _IDS[0]
    cands = [c for c in cands if c != q]
    if not cands:
        return
    w = _P4P.selection_weights(q, cands, softness=softness)
    assert w.shape == (len(cands),)
    assert (w > 0).all()
    assert w.sum() == pytest.approx(1.0)


@given(st.lists(st.sampled_from(_IDS), min_size=2, max_size=25, unique=True))
def test_p4p_weights_monotone_in_pdistance(cands):
    q = _IDS[0]
    cands = [c for c in cands if c != q]
    if len(cands) < 2:
        return
    w = _P4P.selection_weights(q, cands, softness=1.0)
    my = _P4P.my_pid(q)
    d = np.array([_P4P._pdistance[my, _P4P.my_pid(c)] for c in cands])
    # strictly cheaper p-distance never gets a smaller weight
    for i in range(len(cands)):
        for j in range(len(cands)):
            if d[i] < d[j]:
                assert w[i] >= w[j] - 1e-12


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=20, max_value=60),
    st.integers(min_value=0, max_value=1000),
)
def test_streaming_conservation(copies, intervals, seed):
    src = max(
        _UNDERLAY.hosts, key=lambda h: h.resources.bandwidth_up_kbps
    ).host_id
    viewers = [i for i in _IDS if i != src][:25]
    swarm = StreamingSwarm(
        _UNDERLAY, src, viewers,
        config=StreamConfig(bitrate_kbps=800.0, source_copies=copies),
        policy=SchedulerPolicy.BANDWIDTH_AWARE, rng=seed,
    )
    rep = swarm.run(intervals)
    # the source never exceeds its copy budget
    assert swarm.source_chunks_served <= copies * intervals
    # every held chunk was produced; playback counters are consistent
    for p in swarm.peers.values():
        assert all(0 <= c <= swarm.live_edge for c in p.chunks)
        if p.started:
            assert p.played + p.missed == p.playhead + 1
        assert 0.0 <= p.continuity <= 1.0
    assert rep.chunks_produced == intervals
