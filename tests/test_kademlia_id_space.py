"""Unit tests for the Kademlia id space."""

import pytest

from repro.errors import OverlayError
from repro.overlay.kademlia import (
    ID_BITS,
    ID_SPACE,
    bucket_index,
    key_for,
    random_id,
    random_id_in_bucket,
    sort_by_distance,
    xor_distance,
)


def test_xor_distance_basics():
    assert xor_distance(0b1010, 0b1010) == 0
    assert xor_distance(0b1010, 0b0010) == 0b1000
    assert xor_distance(5, 9) == xor_distance(9, 5)


def test_out_of_range_rejected():
    with pytest.raises(OverlayError):
        xor_distance(-1, 0)
    with pytest.raises(OverlayError):
        xor_distance(ID_SPACE, 0)
    with pytest.raises(OverlayError):
        xor_distance("abc", 0)  # type: ignore[arg-type]


def test_bucket_index_is_highest_differing_bit():
    assert bucket_index(0, 1) == 0
    assert bucket_index(0, 0b1000) == 3
    assert bucket_index(0b1111, 0b0111) == 3


def test_bucket_index_same_id_rejected():
    with pytest.raises(OverlayError):
        bucket_index(42, 42)


def test_random_id_in_range_and_deterministic():
    a = random_id(rng=5)
    b = random_id(rng=5)
    assert a == b
    assert 0 <= a < ID_SPACE


def test_random_id_in_bucket_lands_in_bucket():
    own = random_id(rng=1)
    for bucket in (0, 1, 7, 63, 159):
        rid = random_id_in_bucket(own, bucket, rng=2)
        assert bucket_index(own, rid) == bucket


def test_random_id_in_bucket_bad_index():
    with pytest.raises(OverlayError):
        random_id_in_bucket(0, ID_BITS)


def test_key_for_is_stable_160bit():
    k1 = key_for("hello")
    k2 = key_for("hello")
    assert k1 == k2
    assert 0 <= k1 < ID_SPACE
    assert key_for("hello") != key_for("world")


def test_sort_by_distance():
    ids = [0b100, 0b001, 0b111]
    assert sort_by_distance(ids, 0b000) == [0b001, 0b100, 0b111]
    assert sort_by_distance(ids, 0b111) == [0b111, 0b100, 0b001]
