"""Unit tests for coordinate evaluation metrics."""

import numpy as np
import pytest

from repro.coords import (
    closest_peer_accuracy,
    evaluate_embedding,
    relative_errors,
    selection_stretch,
)
from repro.errors import CoordinateError


def _mat(vals):
    return np.array(vals, dtype=float)


def test_relative_errors_perfect_prediction():
    m = _mat([[0, 10, 20], [10, 0, 30], [20, 30, 0]])
    assert np.allclose(relative_errors(m, m), 0.0)


def test_relative_errors_values():
    measured = _mat([[0, 10], [10, 0]])
    predicted = _mat([[0, 15], [15, 0]])
    errs = relative_errors(predicted, measured)
    assert errs.shape == (1,)
    assert errs[0] == pytest.approx(0.5)


def test_shape_mismatch_rejected():
    with pytest.raises(CoordinateError):
        relative_errors(np.zeros((2, 2)), np.zeros((3, 3)))


def test_closest_peer_accuracy_perfect_and_broken():
    m = _mat([[0, 1, 9], [1, 0, 9], [9, 9, 0]])
    assert closest_peer_accuracy(m, m) == 1.0
    wrong = _mat([[0, 9, 1], [9, 0, 1], [1, 1, 0]])
    # node 0's predicted nearest is 2, truly nearest is 1
    assert closest_peer_accuracy(wrong, m) < 1.0


def test_selection_stretch_one_for_perfect():
    m = _mat([[0, 5, 8], [5, 0, 2], [8, 2, 0]])
    assert selection_stretch(m, m) == pytest.approx(1.0)


def test_selection_stretch_penalises_bad_choice():
    measured = _mat([[0, 1, 10], [1, 0, 10], [10, 10, 0]])
    predicted = _mat([[0, 10, 1], [10, 0, 10], [1, 10, 0]])
    s = selection_stretch(predicted, measured)
    assert s > 1.0


def test_evaluate_embedding_report_fields():
    m = _mat([[0, 10, 20], [10, 0, 30], [20, 30, 0]])
    rep = evaluate_embedding(m * 1.1, m)
    row = rep.as_row()
    assert set(row) == {
        "median_rel_err", "p90_rel_err", "mean_rel_err", "closest_acc", "stretch",
    }
    assert row["median_rel_err"] == pytest.approx(0.1)
    assert row["closest_acc"] == 1.0


def test_all_zero_measured_rejected():
    z = np.zeros((3, 3))
    with pytest.raises(CoordinateError):
        evaluate_embedding(z, z)
