"""Smoke tests: the fast example scripts run end-to-end and print their
headline output (guards the examples against API drift)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "underlay:" in out
    assert "file-sharing" in out and "real-time-communication" in out
    assert "collection overhead" in out


def test_geo_poi_search(capsys):
    out = _run("geo_poi_search.py", capsys)
    assert "area query recall" in out
    assert "dispatch" in out
    assert "nearest restaurants" in out


def test_superpeer_directory(capsys):
    out = _run("superpeer_directory.py", capsys)
    assert "SkyEye root view" in out
    assert "random" in out and "capacity" in out


def test_examples_directory_is_complete():
    expected = {
        "quickstart.py",
        "isp_friendly_swarm.py",
        "latency_aware_voip.py",
        "geo_poi_search.py",
        "superpeer_directory.py",
        "p2p_tv.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present
