"""Unit tests for the DOT exporters."""

import networkx as nx
import pytest

from repro.underlay import Tier
from repro.viz import color_for, dot_overlay, dot_topology, write_figure6_pair


def test_color_cycling():
    assert color_for(0) == color_for(20)
    assert color_for(0) != color_for(1)


def test_dot_topology_structure(small_underlay):
    topo = small_underlay.topology
    dot = dot_topology(topo)
    assert dot.startswith("graph underlay {")
    assert dot.endswith("}")
    # one node line per AS
    assert sum(1 for line in dot.splitlines() if "[label=\"AS" in line) == len(topo)
    # transit solid, peering dashed
    assert dot.count("style=solid") == len(topo.transit_links())
    assert dot.count("style=dashed") == len(topo.peering_links())
    # tier-1 carriers drawn distinctly
    t1 = topo.ases_by_tier(Tier.TIER1)
    assert dot.count("doubleoctagon") == len(t1)


def test_dot_overlay_edge_classes(dense_underlay):
    u = dense_underlay
    ids = u.host_ids()[:20]
    g = nx.Graph()
    g.add_nodes_from(ids)
    same_pair = None
    diff_pair = None
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            if u.asn_of(a) == u.asn_of(b) and same_pair is None:
                same_pair = (a, b)
            if u.asn_of(a) != u.asn_of(b) and diff_pair is None:
                diff_pair = (a, b)
    assert same_pair and diff_pair
    g.add_edge(*same_pair)
    g.add_edge(*diff_pair)
    dot = dot_overlay(g, u.asn_of, title="test")
    assert 'label="test"' in dot
    assert dot.count("penwidth=1.6") == 1      # intra-AS edge emphasised
    assert dot.count('color="#999999"') == 1   # inter-AS edge greyed


def test_dot_overlay_roles(small_underlay):
    u = small_underlay
    ids = u.host_ids()[:4]
    g = nx.Graph()
    g.add_nodes_from(ids)
    roles = {ids[0]: "ultrapeer"}
    dot = dot_overlay(g, u.asn_of, role_of=lambda n: roles.get(n, "leaf"))
    assert dot.count("shape=box") == 1


def test_write_figure6_pair(tmp_path, small_underlay):
    u = small_underlay
    ids = u.host_ids()[:6]
    g = nx.cycle_graph(6)
    g = nx.relabel_nodes(g, dict(enumerate(ids)))
    p1, p2 = write_figure6_pair(g, g, u.asn_of, str(tmp_path / "fig6"))
    for p, tag in ((p1, "uniform"), (p2, "biased")):
        text = open(p).read()
        assert "graph overlay {" in text
        assert tag in text
