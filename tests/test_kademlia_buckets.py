"""Unit tests for k-buckets and the routing table."""

import pytest

from repro.errors import OverlayError
from repro.overlay.kademlia import Contact, KBucket, RoutingTable, xor_distance


def c(nid, hid=None, rtt=float("inf")):
    return Contact(node_id=nid, host_id=hid if hid is not None else nid, rtt_ms=rtt)


class TestKBucketLRU:
    def test_insert_until_full_then_drop(self):
        b = KBucket(k=3)
        assert all(b.update(c(i)) for i in range(3))
        assert not b.update(c(99))
        assert 99 not in b
        assert len(b) == 3

    def test_refresh_moves_to_tail(self):
        b = KBucket(k=3)
        for i in range(3):
            b.update(c(i))
        b.update(c(0))
        assert [x.node_id for x in b.contacts()] == [1, 2, 0]

    def test_remove(self):
        b = KBucket(k=3)
        b.update(c(1))
        b.remove(1)
        assert 1 not in b
        b.remove(2)  # absent is fine

    def test_get(self):
        b = KBucket(k=2)
        b.update(c(5, rtt=12.0))
        assert b.get(5).rtt_ms == 12.0
        assert b.get(6) is None

    def test_invalid_k(self):
        with pytest.raises(OverlayError):
            KBucket(k=0)


class TestKBucketProximity:
    def test_full_bucket_prefers_lower_rtt(self):
        b = KBucket(k=2, proximity=True)
        b.update(c(1, rtt=100.0))
        b.update(c(2, rtt=200.0))
        assert b.update(c(3, rtt=50.0))  # evicts the 200ms contact
        assert 2 not in b and 3 in b

    def test_full_bucket_rejects_higher_rtt(self):
        b = KBucket(k=2, proximity=True)
        b.update(c(1, rtt=10.0))
        b.update(c(2, rtt=20.0))
        assert not b.update(c(3, rtt=500.0))

    def test_refresh_keeps_best_rtt(self):
        b = KBucket(k=2, proximity=True)
        b.update(c(1, rtt=10.0))
        b.update(c(1, rtt=50.0))  # worse later measurement
        assert b.get(1).rtt_ms == 10.0


class TestRoutingTable:
    def test_ignores_self(self):
        rt = RoutingTable(own_id=42)
        assert not rt.update(c(42))
        assert rt.size() == 0

    def test_update_places_in_correct_bucket(self):
        rt = RoutingTable(own_id=0, k=4)
        rt.update(c(0b1000))
        assert rt.buckets[3].get(0b1000) is not None

    def test_closest_returns_sorted_by_xor(self):
        rt = RoutingTable(own_id=0, k=20)
        ids = [1, 2, 3, 8, 9, 300, 5000]
        for i in ids:
            rt.update(c(i))
        target = 7
        got = [x.node_id for x in rt.closest(target, 4)]
        expected = sorted(ids, key=lambda i: xor_distance(i, target))[:4]
        assert got == expected

    def test_remove_and_get(self):
        rt = RoutingTable(own_id=0)
        rt.update(c(9))
        assert rt.get(9) is not None
        rt.remove(9)
        assert rt.get(9) is None
        assert rt.get(0) is None  # self lookup

    def test_nonempty_buckets(self):
        rt = RoutingTable(own_id=0, k=2)
        rt.update(c(1))        # bucket 0
        rt.update(c(0b100))    # bucket 2
        assert rt.nonempty_buckets() == [0, 2]

    def test_all_contacts_collects_everything(self):
        rt = RoutingTable(own_id=0, k=8)
        for i in range(1, 30):
            rt.update(c(i))
        assert rt.size() == len(rt.all_contacts())
