"""Property tests: Chord ring algebra and ownership partition."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.chord import RING, chord_id, in_interval

ring_points = st.integers(min_value=0, max_value=RING - 1)


@given(ring_points, ring_points, ring_points)
def test_interval_partition(x, a, b):
    """For a != b, every x is in exactly one of (a, b] and (b, a]."""
    if a == b:
        return
    assert in_interval(x, a, b) != in_interval(x, b, a)


@given(ring_points, ring_points)
def test_endpoint_membership(a, b):
    if a == b:
        return
    assert in_interval(b, a, b)        # b ∈ (a, b]
    assert not in_interval(a, a, b)    # a ∉ (a, b]


@given(st.text(max_size=30))
def test_chord_id_stable_and_in_range(s):
    k1, k2 = chord_id(s), chord_id(s)
    assert k1 == k2
    assert 0 <= k1 < RING


@given(
    st.sets(ring_points, min_size=2, max_size=30),
    st.lists(ring_points, min_size=1, max_size=30),
)
def test_successor_ownership_partitions_keys(node_ids, keys):
    """Global successor ownership: every key has exactly one owner, and it
    is the first node clockwise from the key."""
    ring = sorted(node_ids)

    def owner(key):
        idx = int(np.searchsorted(ring, key))
        return ring[idx % len(ring)]

    for key in keys:
        o = owner(key)
        # the owner's predecessor interval contains the key
        pred = ring[(ring.index(o) - 1) % len(ring)]
        if pred != o:
            assert in_interval(key, pred, o)
        # and no other node's interval does
        owners = 0
        for i, nid in enumerate(ring):
            p = ring[i - 1]
            if p == nid:
                owners += 1
            elif in_interval(key, p, nid):
                owners += 1
        assert owners == 1
