"""Edge-case tests for the hierarchical DHT and scoped hashing corners."""

import pytest

from repro.overlay import HierarchicalDHT
from repro.overlay.kademlia import ScopedHashing
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


def test_single_member_local_plane_falls_back_to_global():
    """A region with one peer has no usable local DHT; its lookups must
    go straight to the global plane and still succeed."""
    u = Underlay.generate(UnderlayConfig(n_hosts=41, seed=71))
    ids = u.host_ids()
    lonely = ids[0]

    # custom region map: host 0 alone in region 9, everyone else by parity
    def region_of(hid: int) -> int:
        if hid == lonely:
            return 9
        return hid % 2

    sim = Simulation()
    h = HierarchicalDHT(u, sim, region_of=region_of, rng=3)
    h.bootstrap_all()
    sim.run(until=120_000)
    owner = ids[5]
    h.publish(owner, "solo-doc")
    sim.run(until=sim.now + 60_000)
    rec = h.lookup(lonely, "solo-doc")
    sim.run(until=sim.now + 90_000)
    assert rec.done and rec.values
    assert rec.resolved_locally is False  # forced global path


def test_publish_from_every_region_resolves_globally():
    u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=72))
    sim = Simulation()
    h = HierarchicalDHT(u, sim, rng=4)
    h.bootstrap_all()
    sim.run(until=120_000)
    ids = u.host_ids()
    regions = sorted({h.region_of(x) for x in ids})
    owners = {r: next(x for x in ids if h.region_of(x) == r) for r in regions}
    for r, owner in owners.items():
        h.publish(owner, f"doc-r{r}")
    sim.run(until=sim.now + 60_000)
    # every region's content reachable from every other region
    recs = []
    for r, owner in owners.items():
        reader = next(
            x for x in ids if h.region_of(x) != r
        )
        recs.append(h.lookup(reader, f"doc-r{r}"))
    sim.run(until=sim.now + 120_000)
    assert all(rec.done and rec.values for rec in recs)


def test_scoped_hashing_max_bits():
    h = ScopedHashing(scope_bits=16)
    key = h.scoped_key(65_535, "x")
    assert h.scope_of(key) == 65_535
    nid = h.scoped_node_id(0, rng=1)
    assert h.scope_of(nid) == 0
