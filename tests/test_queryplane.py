"""Query-plane primitives: SeenFilter windowing, BoundedRouteTable,
Bitmap2D batch ops, send-log digests, and the memory-flat guarantee."""

import numpy as np
import pytest

from repro.core.peerstate import Bitmap2D, PeerState
from repro.errors import SimulationError
from repro.overlay.gnutella import GnutellaConfig, GnutellaNetwork
from repro.sim import Simulation
from repro.sim.messages import MessageBus
from repro.sim.queryplane import (
    BoundedRouteTable,
    SeenFilter,
    SendLog,
    flood_trace_digest,
)
from repro.underlay import Underlay, UnderlayConfig


def _peerstate(hosts):
    ps = PeerState()
    for h in hosts:
        ps.admit(h)
    return ps


# ---------------------------------------------------------------- Bitmap2D
def test_bitmap_batch_ops_match_scalar():
    ps = _peerstate(range(16))
    bm = ps.bitmap("b", 70)  # spans >1 uint64 word
    rng = np.random.default_rng(3)
    marked = set()
    for _ in range(200):
        slot, bit = int(rng.integers(16)), int(rng.integers(70))
        bm.set(slot, bit)
        marked.add((slot, bit))
    for bit in (0, 5, 63, 64, 69):
        slots = list(range(16))
        got = bm.test_slots(slots, bit)
        want = np.array([(s, bit) in marked for s in slots])
        assert (got == want).all()
    bm.set_slots([1, 3, 5], 69)
    assert all(bm.test(s, 69) for s in (1, 3, 5))
    bm.clear_column(69)
    assert not any(bm.test(s, 69) for s in range(16))
    # other columns untouched by the clear
    assert bm.test_slots(list(range(16)), 64).sum() == sum(
        1 for s, b in marked if b == 64
    )


# ---------------------------------------------------------------- SeenFilter
@pytest.mark.parametrize("backed", [True, False])
def test_seen_filter_mark_and_window_expiry(backed):
    ps = _peerstate(range(8)) if backed else None
    sf = SeenFilter(2, peerstate=ps)
    sf.mark(1, "k1")
    sf.mark_many([2, 3], "k2")
    assert sf.test(1, "k1") and sf.test(2, "k2") and sf.test(3, "k2")
    assert not sf.test(4, "k2") and not sf.test(2, "k1")
    assert len(sf) == 2 and sf.known("k1")
    # third key expires the oldest (k1), FIFO
    sf.mark(4, "k3")
    assert sf.expired_keys == 1
    assert not sf.known("k1") and not sf.test(1, "k1")
    assert sf.test(2, "k2") and sf.test(4, "k3")
    # re-admitting the expired key starts from a clean column
    sf.mark(5, "k1")
    assert sf.test(5, "k1") and not sf.test(1, "k1")


@pytest.mark.parametrize("backed", [True, False])
def test_seen_filter_membership_and_empty_mark(backed):
    ps = _peerstate(range(4)) if backed else None
    sf = SeenFilter(4, peerstate=ps)
    assert sf.membership("fresh") is None
    sf.mark_many([], "reserved")  # an empty flood still claims its slot
    assert sf.known("reserved") and len(sf) == 1
    sf.mark(2, "k")
    member = sf.membership("k")
    assert member is not None and member(2) and not member(3)


def test_seen_filter_backends_agree():
    hosts = list(range(10))
    bitmap_sf = SeenFilter(3, peerstate=_peerstate(hosts))
    set_sf = SeenFilter(3)
    rng = np.random.default_rng(7)
    for _ in range(300):
        host = int(rng.integers(10))
        key = f"k{int(rng.integers(6))}"
        if rng.random() < 0.5:
            bitmap_sf.mark(host, key)
            set_sf.mark(host, key)
        assert bitmap_sf.test(host, key) == set_sf.test(host, key)
        assert bitmap_sf.known(key) == set_sf.known(key)
    assert bitmap_sf.expired_keys == set_sf.expired_keys


def test_seen_filter_rejects_bad_window():
    with pytest.raises(SimulationError):
        SeenFilter(0)


# ---------------------------------------------------------- BoundedRouteTable
def test_route_table_fifo_eviction():
    rt = BoundedRouteTable(2)
    rt["a"] = 1
    rt["b"] = 2
    rt["a"] = 9  # overwrite does not evict
    assert len(rt) == 2 and rt.get("a") == 9
    rt["c"] = 3  # evicts "a" (oldest insertion)
    assert "a" not in rt and rt.get("a") is None
    assert rt.get("b") == 2 and rt.get("c") == 3
    assert rt.pop("b") == 2 and "b" not in rt
    rt.clear()
    assert len(rt) == 0
    with pytest.raises(SimulationError):
        BoundedRouteTable(0)


# ------------------------------------------------------------------ SendLog
def test_flood_trace_digest_order_insensitive():
    a = [(1.0, 1, 2, "QUERY", 50), (0.5, 2, 3, "PING", 23)]
    assert flood_trace_digest(a) == flood_trace_digest(list(reversed(a)))
    assert flood_trace_digest(a) != flood_trace_digest(a[:1])


def test_send_log_observer_and_record():
    sim = Simulation()
    log = SendLog(sim)
    log.observe(1, 2, 50, "QUERY")  # bus path stamps sim.now
    log.record(7.5, 2, 3, "QUERY", 50)  # kernel path supplies the time
    assert log.events == [(0.0, 1, 2, "QUERY", 50), (7.5, 2, 3, "QUERY", 50)]
    d = log.digest()
    log.clear()
    assert log.events == [] and log.digest() != d


# ----------------------------------------------------------- obs metrics
def test_batch_expansion_wires_obs_metrics():
    from repro.obs.registry import MetricRegistry

    u = Underlay.generate(UnderlayConfig(n_hosts=20, seed=9))
    sim = Simulation()
    bus = MessageBus(sim, u)
    net = GnutellaNetwork(u, sim, bus, rng=2, query_backend="batch")
    registry = MetricRegistry()
    net.instrument(registry)
    net.add_population(u.hosts)
    net.bootstrap(cache_fill=15)
    net.join_all()
    sim.run()
    net.ping_round()
    sim.run()
    net.search(u.hosts[0].host_id, 1)
    sim.run()

    expanded = registry.get("queries_expanded_total")
    assert expanded.value(kind="QUERY") == 1
    assert expanded.value(kind="PING") == len(net.nodes)
    frontier = registry.get("query_frontier_size")
    assert frontier.count() > 0


# -------------------------------------------------------- memory-flat regression
def test_query_state_memory_flat_over_many_queries():
    """10^5 queries leave the suppression/bookkeeping state bounded: the
    seen window recycles columns, route tables stay capped, and search
    retention evicts old records — memory does not grow with query count."""
    u = Underlay.generate(UnderlayConfig(n_hosts=8, seed=3))
    sim = Simulation()
    bus = MessageBus(sim, u)
    cfg = GnutellaConfig(query_ttl=1, seen_window=256, route_cache_size=64)
    net = GnutellaNetwork(
        u, sim, bus, config=cfg, rng=1,
        query_backend="batch", search_retention=128,
    )
    net.add_population(u.hosts, ultrapeer_fraction=1.0)
    net.bootstrap(cache_fill=8)
    net.join_all()
    sim.run()

    origins = [h.host_id for h in u.hosts]
    checkpoint = None
    for i in range(100_000):
        net.search(origins[i % len(origins)], i % 11)
        if i == 9_999:
            checkpoint = net.seen.memory_bytes()
    assert net.seen.memory_bytes() == checkpoint  # flat after window fill
    assert len(net.seen) <= cfg.seen_window
    assert net.seen.expired_keys >= 100_000 - cfg.seen_window
    assert len(net.searches) <= 128
    for node in net.nodes.values():
        assert len(node._route_back) <= cfg.route_cache_size
