"""Integration tests: Gnutella join, ping/pong, search, download stages."""

import pytest

from repro.collection import ISPOracle
from repro.errors import OverlayError
from repro.overlay.gnutella import (
    GnutellaConfig,
    GnutellaNetwork,
    LEAF,
    NeighborPolicy,
    ULTRAPEER,
)
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture()
def net():
    u = Underlay.generate(UnderlayConfig(n_hosts=45, seed=13))
    sim = Simulation()
    bus, acct = u.message_bus(sim)
    network = GnutellaNetwork(u, sim, bus, rng=2)
    network.add_population(u.hosts, ultrapeer_fraction=1 / 3)
    network.bootstrap(cache_fill=30)
    network.join_all()
    sim.run()
    return u, sim, network, acct


def test_population_roles(net):
    _u, _sim, network, _a = net
    assert len(network.ultrapeers()) == 15
    assert len(network.leaves()) == 30


def test_join_builds_connected_structure(net):
    _u, _sim, network, _a = net
    # all leaves found at least one ultrapeer
    attached = [n for n in network.leaves() if n.neighbors]
    assert len(attached) >= 0.9 * len(network.leaves())
    # UP mesh has edges
    assert all(len(up.neighbors) > 0 for up in network.ultrapeers())
    # neighbor sets are symmetric between ultrapeers
    for up in network.ultrapeers():
        for nb in up.neighbors:
            other = network.nodes[nb]
            assert up.host_id in other.neighbors or up.host_id in other.leaves


def test_leaf_neighbor_caps_respected(net):
    _u, _sim, network, _a = net
    cfg = network.config
    for leaf in network.leaves():
        assert len(leaf.neighbors) <= cfg.leaf_connections
    for up in network.ultrapeers():
        assert len(up.leaves) <= cfg.max_leaves
        # outbound target + inbound slack
        assert len(up.neighbors) <= 2 * cfg.max_up_neighbors + 1


def test_ping_generates_pongs_and_fills_caches(net):
    _u, sim, network, _a = net
    network.ping_round()
    sim.run()
    counts = network.message_counts()
    assert counts.get("PING", 0) > 0
    assert counts.get("PONG", 0) > counts["PING"]  # pong caching multiplies


def test_search_finds_shared_content(net):
    u, sim, network, _a = net
    owner = network.leaves()[0].host_id
    network.share_content(owner, [777])
    sim.run()
    origin = network.leaves()[-1].host_id
    guid = network.search(origin, 777)
    sim.run()
    rec = network.searches[guid]
    assert owner in rec.hits


def test_search_for_missing_content_fails_cleanly(net):
    _u, sim, network, _a = net
    guid = network.search(network.leaves()[0].host_id, 31337)
    sim.run()
    assert network.searches[guid].hits == []
    assert network.download_stage(guid) is None


def test_download_stage_transfers_from_hit(net):
    u, sim, network, acct = net
    owner = network.leaves()[1].host_id
    network.share_content(owner, [555])
    sim.run()
    origin = network.leaves()[2].host_id
    guid = network.search(origin, 555)
    sim.run()
    bytes_before = acct.summary.total_bytes
    src = network.download_stage(guid, file_size_bytes=1_000_000)
    sim.run()
    assert src == owner
    assert acct.summary.total_bytes - bytes_before >= 1_000_000
    assert network.searches[guid].download_done


def test_biased_policy_requires_oracle():
    u = Underlay.generate(UnderlayConfig(n_hosts=10, seed=1))
    sim = Simulation()
    bus, _ = u.message_bus(sim)
    with pytest.raises(OverlayError):
        GnutellaNetwork(u, sim, bus, policy=NeighborPolicy.BIASED)


def test_biased_join_improves_locality():
    results = {}
    for policy in (NeighborPolicy.UNBIASED, NeighborPolicy.BIASED):
        u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=21))
        sim = Simulation()
        bus, _ = u.message_bus(sim, with_accounting=False)
        network = GnutellaNetwork(
            u, sim, bus, policy=policy, oracle=ISPOracle(u), rng=4
        )
        network.add_population(u.hosts)
        network.bootstrap(cache_fill=59)
        network.join_all()
        sim.run()
        results[policy] = network.intra_as_edge_fraction()
    assert results[NeighborPolicy.BIASED] > 2 * results[NeighborPolicy.UNBIASED]


def test_duplicate_node_rejected(net):
    u, _sim, network, _a = net
    with pytest.raises(OverlayError):
        network.add_node(u.hosts[0], ULTRAPEER)


def test_role_of_unknown_rejected(net):
    _u, _sim, network, _a = net
    with pytest.raises(OverlayError):
        network.role_of(10_000)


def test_query_ttl_limits_flooding():
    u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=9))

    def run_with_ttl(ttl):
        sim = Simulation()
        bus, _ = u.message_bus(sim, with_accounting=False)
        network = GnutellaNetwork(
            u, sim, bus, config=GnutellaConfig(query_ttl=ttl), rng=3
        )
        network.add_population(u.hosts)
        network.bootstrap(cache_fill=40)
        network.join_all()
        sim.run()
        network.search(network.leaves()[0].host_id, 1)
        sim.run()
        return network.message_counts().get("QUERY", 0)

    assert run_with_ttl(1) < run_with_ttl(4)
