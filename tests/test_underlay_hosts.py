"""Unit tests for hosts and the host factory."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.underlay import (
    ACCESS_CLASSES,
    HostFactory,
    PeerResources,
    TopologyConfig,
    generate_topology,
)


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=4))


def test_resources_validation():
    with pytest.raises(ConfigurationError):
        PeerResources(-1, 0, 0, 0, 0, 0)


def test_capacity_score_orders_classes():
    dialup = ACCESS_CLASSES[0][2]
    fiber = ACCESS_CLASSES[3][2]
    assert fiber.capacity_score() > dialup.capacity_score()


def test_hosts_balanced_over_stubs(topo):
    factory = HostFactory(topo, rng=1)
    hosts = factory.create_hosts(100)
    stubs = topo.stub_asns()
    counts = {asn: 0 for asn in stubs}
    for h in hosts:
        counts[h.asn] += 1
    assert max(counts.values()) - min(counts.values()) <= 1


def test_explicit_asns_round_robin(topo):
    factory = HostFactory(topo, rng=1)
    hosts = factory.create_hosts(9, asns=[0, 1, 2])
    assert [h.asn for h in hosts] == [0, 1, 2] * 3


def test_host_ids_sequential_with_start(topo):
    factory = HostFactory(topo, rng=1)
    hosts = factory.create_hosts(5, start_id=100)
    assert [h.host_id for h in hosts] == [100, 101, 102, 103, 104]


def test_access_class_mix_present(topo):
    factory = HostFactory(topo, rng=2)
    hosts = factory.create_hosts(400)
    classes = {h.access_class for h in hosts}
    assert classes == {"dialup", "dsl", "cable", "fiber"}


def test_access_latency_within_class_range(topo):
    factory = HostFactory(topo, rng=3)
    ranges = {name: rng for name, _w, _r, rng in ACCESS_CLASSES}
    for h in factory.create_hosts(200):
        lo, hi = ranges[h.access_class]
        assert lo <= h.access_latency_ms <= hi


def test_deterministic_given_seed(topo):
    a = HostFactory(topo, rng=7).create_hosts(30)
    b = HostFactory(topo, rng=7).create_hosts(30)
    assert [(h.asn, h.access_class, h.access_latency_ms) for h in a] == [
        (h.asn, h.access_class, h.access_latency_ms) for h in b
    ]


def test_negative_count_rejected(topo):
    with pytest.raises(ConfigurationError):
        HostFactory(topo, rng=1).create_hosts(-1)
