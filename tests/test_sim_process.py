"""Unit tests for periodic processes."""

import pytest

from repro.sim import PeriodicProcess, Simulation, call_after


def test_periodic_fires_at_period():
    sim = Simulation()
    ticks = []
    PeriodicProcess(sim, 10.0, lambda: ticks.append(sim.now))
    sim.run(until=35.0)
    assert ticks == [10.0, 20.0, 30.0]


def test_initial_delay_override():
    sim = Simulation()
    ticks = []
    PeriodicProcess(sim, 10.0, lambda: ticks.append(sim.now), initial_delay=1.0)
    sim.run(until=12.0)
    assert ticks == [1.0, 11.0]


def test_stop_prevents_future_ticks():
    sim = Simulation()
    ticks = []
    proc = PeriodicProcess(sim, 5.0, lambda: ticks.append(sim.now))
    sim.run(until=12.0)
    proc.stop()
    sim.run(until=60.0)
    assert ticks == [5.0, 10.0]
    assert proc.stopped


def test_stop_is_idempotent():
    sim = Simulation()
    proc = PeriodicProcess(sim, 5.0, lambda: None)
    proc.stop()
    proc.stop()
    sim.run(until=20.0)
    assert proc.ticks == 0


def test_jitter_keeps_intervals_near_period():
    sim = Simulation()
    ticks = []
    PeriodicProcess(sim, 100.0, lambda: ticks.append(sim.now), jitter=0.2, rng=1)
    sim.run(until=1000.0)
    intervals = [b - a for a, b in zip([0.0] + ticks, ticks)]
    assert all(80.0 <= iv <= 120.0 for iv in intervals)
    assert len(ticks) >= 8


def test_invalid_parameters():
    sim = Simulation()
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 1.0, lambda: None, jitter=1.5)


def test_call_after():
    sim = Simulation()
    fired = []
    call_after(sim, 3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]


def test_callback_exception_does_not_corrupt_stop():
    sim = Simulation()

    calls = []

    def boom():
        calls.append(sim.now)
        raise RuntimeError("handler failure")

    PeriodicProcess(sim, 5.0, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    # the failing tick was recorded; engine is reusable afterwards
    assert calls == [5.0]
    sim.schedule(1.0, calls.append, -1.0)
    sim.run()
    assert calls[-1] == -1.0
