"""Unit tests for Vivaldi coordinates."""

import numpy as np
import pytest

from repro.coords import VivaldiConfig, VivaldiNode, VivaldiSystem, evaluate_embedding
from repro.errors import ConfigurationError, CoordinateError


def test_config_validation():
    with pytest.raises(ConfigurationError):
        VivaldiConfig(dim=0)
    with pytest.raises(ConfigurationError):
        VivaldiConfig(cc=0.0)


def test_node_update_moves_toward_correct_distance():
    cfg = VivaldiConfig(dim=2, use_height=False)
    a = VivaldiNode(cfg, rng=1)
    b = VivaldiNode(cfg, rng=2)
    b.position = np.array([10.0, 0.0])
    a.position = np.array([0.0, 0.0])
    target = 4.0
    for _ in range(200):
        a.update(target, b)
    assert a.distance_to(b) == pytest.approx(target, rel=0.15)


def test_update_reduces_error_estimate_on_consistent_samples():
    cfg = VivaldiConfig(dim=2, use_height=False)
    a = VivaldiNode(cfg, rng=1)
    b = VivaldiNode(cfg, rng=2)
    b.position = np.array([5.0, 5.0])
    initial_error = a.error
    for _ in range(100):
        a.update(7.0, b)
    assert a.error < initial_error


def test_nonpositive_rtt_rejected():
    cfg = VivaldiConfig()
    a = VivaldiNode(cfg, rng=1)
    b = VivaldiNode(cfg, rng=2)
    with pytest.raises(CoordinateError):
        a.update(0.0, b)


def test_height_stays_positive():
    cfg = VivaldiConfig(dim=2, use_height=True)
    a = VivaldiNode(cfg, rng=1)
    b = VivaldiNode(cfg, rng=2)
    for rtt in (1.0, 2.0, 0.5, 3.0) * 50:
        a.update(rtt, b)
    assert a.height > 0


def test_system_converges_on_euclidean_matrix():
    # points on a plane: perfectly embeddable, Vivaldi should get close
    rng = np.random.default_rng(3)
    pts = rng.uniform(0, 100, size=(25, 2))
    diff = pts[:, None, :] - pts[None, :, :]
    rtt = np.sqrt((diff**2).sum(-1)) + 1e-9
    np.fill_diagonal(rtt, 0.0)
    sys = VivaldiSystem(rtt, VivaldiConfig(dim=2, use_height=False), rng=4)
    sys.run(rounds=80, neighbors_per_round=6)
    rep = evaluate_embedding(sys.estimated_matrix(), rtt)
    assert rep.median_relative_error < 0.12


def test_system_on_underlay_rtt(small_underlay):
    rtt = small_underlay.rtt_matrix()
    sys = VivaldiSystem(rtt, VivaldiConfig(dim=3, use_height=True), rng=5)
    sys.run(rounds=50, neighbors_per_round=8)
    rep = evaluate_embedding(sys.estimated_matrix(), rtt)
    assert rep.median_relative_error < 0.25
    assert rep.mean_selection_stretch < 2.0


def test_estimated_matrix_consistent_with_estimate(small_underlay):
    rtt = small_underlay.rtt_matrix()[:10, :10]
    sys = VivaldiSystem(rtt, rng=6)
    sys.run(rounds=10, neighbors_per_round=3)
    mat = sys.estimated_matrix()
    assert mat[2, 7] == pytest.approx(sys.estimate(2, 7))
    assert mat[2, 2] == 0.0


def test_determinism():
    rtt = np.array([[0, 10, 20], [10, 0, 15], [20, 15, 0]], dtype=float)
    a = VivaldiSystem(rtt, rng=7)
    a.run(rounds=5, neighbors_per_round=2)
    b = VivaldiSystem(rtt, rng=7)
    b.run(rounds=5, neighbors_per_round=2)
    assert np.allclose(a.coordinates(), b.coordinates())


def test_too_few_nodes_rejected():
    with pytest.raises(CoordinateError):
        VivaldiSystem(np.zeros((1, 1)))


def test_invalid_run_params():
    rtt = np.array([[0.0, 1.0], [1.0, 0.0]])
    sys = VivaldiSystem(rtt, rng=1)
    with pytest.raises(ConfigurationError):
        sys.run(rounds=-1)
