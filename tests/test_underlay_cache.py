"""Tests for the substrate cache (:mod:`repro.underlay.cache`)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.underlay import (
    SubstrateCache,
    Underlay,
    UnderlayConfig,
    cached_generate,
    configure_default_cache,
    default_cache,
    disable_default_cache,
    substrate_digest,
)
from repro.underlay._obs import CACHE_COUNTER
from repro.underlay.topology import TopologyConfig

SMALL = UnderlayConfig(n_hosts=30, seed=7)


@pytest.fixture(autouse=True)
def _no_default_cache():
    """Never leak a process-wide cache between tests."""
    disable_default_cache()
    yield
    disable_default_cache()


# -- digest ------------------------------------------------------------------


def test_digest_deterministic():
    a = substrate_digest(UnderlayConfig(n_hosts=30, seed=7))
    b = substrate_digest(UnderlayConfig(n_hosts=30, seed=7))
    assert a == b
    assert len(a) == 16
    assert int(a, 16) >= 0  # valid hex


def test_digest_sensitive_to_every_layer():
    base = substrate_digest(SMALL)
    assert substrate_digest(UnderlayConfig(n_hosts=31, seed=7)) != base
    assert substrate_digest(UnderlayConfig(n_hosts=30, seed=8)) != base
    assert (
        substrate_digest(
            UnderlayConfig(
                n_hosts=30, seed=7, topology=TopologyConfig(n_stub=24)
            )
        )
        != base
    )


def test_digest_rejects_non_scalar_seed():
    cfg = dataclasses.replace(SMALL, seed=np.random.default_rng(0))
    with pytest.raises(ConfigurationError, match="digestable"):
        substrate_digest(cfg)


# -- in-memory LRU -----------------------------------------------------------


def test_memory_hit_returns_same_object():
    cache = SubstrateCache(maxsize=2)
    cold = cache.get_or_generate(SMALL)
    warm = cache.get_or_generate(UnderlayConfig(n_hosts=30, seed=7))
    assert warm is cold
    assert (cache.hits, cache.misses) == (1, 1)
    assert SMALL in cache
    assert len(cache) == 1


def test_cached_underlay_matches_direct_generation():
    cache = SubstrateCache()
    cached = cache.get_or_generate(SMALL)
    direct = Underlay.generate(SMALL)
    assert np.array_equal(cached.latency_matrix, direct.latency_matrix)
    assert np.array_equal(
        cached.routing.hop_matrix(), direct.routing.hop_matrix()
    )


def test_lru_eviction():
    cache = SubstrateCache(maxsize=2)
    c1 = UnderlayConfig(n_hosts=10, seed=1)
    c2 = UnderlayConfig(n_hosts=10, seed=2)
    c3 = UnderlayConfig(n_hosts=10, seed=3)
    cache.get_or_generate(c1)
    cache.get_or_generate(c2)
    cache.get_or_generate(c1)  # refresh c1: c2 is now LRU
    cache.get_or_generate(c3)  # evicts c2
    assert c1 in cache and c3 in cache and c2 not in cache
    assert len(cache) == 2


def test_clear_drops_entries():
    cache = SubstrateCache()
    cache.get_or_generate(SMALL)
    cache.clear()
    assert len(cache) == 0
    assert SMALL not in cache


def test_maxsize_validated():
    with pytest.raises(ConfigurationError):
        SubstrateCache(maxsize=0)


# -- disk tier ---------------------------------------------------------------


def test_disk_roundtrip_warm_start(tmp_path):
    writer = SubstrateCache(disk_dir=tmp_path)
    original = writer.get_or_generate(SMALL)
    npz = list(tmp_path.glob("substrate-*.npz"))
    assert len(npz) == 1
    assert npz[0].name == f"substrate-{substrate_digest(SMALL)}.npz"

    # a fresh cache (fresh process stand-in) warms from disk: the
    # injected matrices are bit-identical and already materialised
    reader = SubstrateCache(disk_dir=tmp_path)
    warmed = reader.get_or_generate(SMALL)
    assert warmed is not original
    assert warmed.latency._as_delay is not None  # injected, not lazy
    assert warmed._latency_matrix is not None
    assert np.array_equal(warmed.latency_matrix, original.latency_matrix)
    assert np.array_equal(
        warmed.routing.hop_matrix(), original.routing.hop_matrix()
    )
    assert np.array_equal(
        warmed.latency.as_delay, original.latency.as_delay
    )


def test_corrupt_disk_entry_falls_back_to_rebuild(tmp_path):
    writer = SubstrateCache(disk_dir=tmp_path)
    original = writer.get_or_generate(SMALL)
    path = tmp_path / f"substrate-{substrate_digest(SMALL)}.npz"
    path.write_bytes(b"not an npz")
    reader = SubstrateCache(disk_dir=tmp_path)
    rebuilt = reader.get_or_generate(SMALL)
    assert np.array_equal(rebuilt.latency_matrix, original.latency_matrix)


# -- observability -----------------------------------------------------------


def test_cache_events_counted_in_observe_scope(tmp_path):
    cache = SubstrateCache(disk_dir=tmp_path)
    with obs.observe() as session:
        cache.get_or_generate(SMALL)  # memory miss + disk miss + store
        cache.get_or_generate(SMALL)  # memory hit
        ctr = session.registry.counter(
            CACHE_COUNTER, "", ("kind", "event")
        )
        assert ctr.value(kind="substrate_memory", event="miss") == 1
        assert ctr.value(kind="substrate_memory", event="hit") == 1
        assert ctr.value(kind="substrate_disk", event="store") == 1


def test_cache_is_silent_outside_observe_scope():
    # no active registry: events are dropped, nothing raises
    cache = SubstrateCache()
    cache.get_or_generate(SMALL)
    cache.get_or_generate(SMALL)
    assert cache.hits == 1


# -- process-wide default cache ----------------------------------------------


def test_cached_generate_without_default_cache_is_direct():
    assert default_cache() is None
    a = cached_generate(SMALL)
    b = cached_generate(SMALL)
    assert a is not b  # no cache configured: distinct objects


def test_cached_generate_through_default_cache():
    cache = configure_default_cache(maxsize=4)
    assert default_cache() is cache
    a = cached_generate(SMALL)
    b = cached_generate(SMALL)
    assert a is b
    assert cache.hits == 1
    disable_default_cache()
    assert default_cache() is None


# -- concurrent writers (atomic disk publication) ----------------------------


def _race_writer(disk_dir, barrier, out_queue):
    """Child process: cold cache, generate + publish the SMALL entry."""
    try:
        barrier.wait(timeout=30)
        cache = SubstrateCache(disk_dir=disk_dir)
        underlay = cache.get_or_generate(SMALL)
        out_queue.put(("ok", float(underlay.latency_matrix[0, 1])))
    except BaseException as exc:  # pragma: no cover - failure reporting
        out_queue.put(("err", repr(exc)))


def test_two_processes_racing_on_one_disk_dir(tmp_path):
    """Two cold processes generate and store the same substrate at once;
    the atomic rename publication means neither can observe (or leave
    behind) a half-written ``.npz``."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    out_queue = ctx.Queue()
    procs = [
        ctx.Process(target=_race_writer, args=(tmp_path, barrier, out_queue))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    outcomes = [out_queue.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    assert [status for status, _ in outcomes] == ["ok", "ok"], outcomes
    assert outcomes[0][1] == outcomes[1][1]  # same substrate either way

    # exactly one published entry, no temp residue
    entries = sorted(f.name for f in tmp_path.iterdir())
    assert entries == [f"substrate-{substrate_digest(SMALL)}.npz"]

    # and the survivor is complete: a cold reader warms from it without
    # falling back to a rebuild
    with obs.observe() as session:
        reader = SubstrateCache(disk_dir=tmp_path)
        warmed = reader.get_or_generate(SMALL)
    direct = Underlay.generate(SMALL)
    assert np.array_equal(warmed.latency_matrix, direct.latency_matrix)
    assert session.registry.get(CACHE_COUNTER).value(
        kind="substrate_disk", event="hit"
    ) == 1.0
