"""Parallel-vs-serial equivalence: the runner's determinism contract.

The acceptance criterion for :mod:`repro.runner`: rewired experiments
produce **row-for-row identical** output at any worker count, and traced
serial runs keep a stable digest (the serial path is behaviourally the
plain ``for`` loop it replaced).
"""

from __future__ import annotations

import functools

import pytest

from repro import obs
from repro.experiments.common import repeat_over_seeds
from repro.experiments.fig6_bns import run_fig6
from repro.experiments.resilience_faults import run_resilience_faults


@functools.lru_cache(maxsize=None)
def _fig6(workers: int):
    result = run_fig6(n_hosts=60, seed=17, workers=workers)
    return result.rows


@functools.lru_cache(maxsize=None)
def _resilience(workers: int):
    result = run_resilience_faults(smoke=True, workers=workers)
    return result.rows


def test_fig6_rows_identical_serial_vs_parallel():
    serial = _fig6(1)
    parallel = _fig6(2)
    assert len(serial) == len(parallel) > 0
    for row_s, row_p in zip(serial, parallel):
        assert row_s == row_p  # bit-identical, row for row


def test_resilience_smoke_rows_identical_serial_vs_parallel():
    serial = _resilience(1)
    parallel = _resilience(2)
    assert len(serial) == len(parallel) > 0
    for row_s, row_p in zip(serial, parallel):
        assert row_s == row_p


def test_repeat_over_seeds_identical_serial_vs_parallel():
    from repro.experiments.common import ExperimentResult

    def experiment(seed: int) -> ExperimentResult:
        # cheap deterministic stand-in with seed-dependent spread
        res = ExperimentResult("TOY", "seed-dependent toy experiment")
        for arm in ("a", "b"):
            res.add_row(arm=arm, value=float((seed * seed + len(arm)) % 7))
        return res

    seeds = [3, 17, 29, 41]
    kwargs = dict(seeds=seeds, key_column="arm", value_columns=["value"])
    serial = repeat_over_seeds(experiment, workers=1, **kwargs)
    parallel = repeat_over_seeds(experiment, workers=2, **kwargs)
    assert serial.rows == parallel.rows
    assert len(serial.rows) == 2


def test_traced_serial_run_keeps_stable_digest():
    """workers=1 runs arms in the ambient scope: two traced serial runs
    of the same seeded sweep emit identical digests (the pre-runner
    golden-trace property, preserved)."""
    digests = []
    for _repeat in range(2):
        with obs.observe() as session:
            run_fig6(n_hosts=50, seed=17, workers=1)
        assert session.tracer.emitted > 0  # arms really traced
        digests.append(session.tracer.digest())
    assert digests[0] == digests[1]


def test_parallel_rows_unaffected_by_parent_tracing():
    """Tracing the parent must not perturb parallel results (workers do
    not ship trace events home; rows stay the runner-contract rows)."""
    with obs.observe():
        traced_rows = run_fig6(n_hosts=60, seed=17, workers=2).rows
    assert traced_rows == _fig6(1)


@pytest.mark.parametrize("workers", [1, 2])
def test_rows_independent_of_worker_count_env_serial(monkeypatch, workers):
    """REPRO_RUNNER_SERIAL=1 collapses any worker count to the serial
    path and the rows are still the same rows."""
    monkeypatch.setenv("REPRO_RUNNER_SERIAL", "1")
    assert run_fig6(n_hosts=60, seed=17, workers=workers).rows == _fig6(1)
