"""Unit tests for churn models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import ChurnConfig, ChurnProcess, Simulation, draw_duration


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ChurnConfig(mean_session=-1.0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(mean_session=0.0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(mean_offline=-5.0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(session_dist="lognormal")
    with pytest.raises(ConfigurationError):
        ChurnConfig(offline_dist="uniform")


def test_draw_duration_unknown_family_rejected():
    with pytest.raises(ConfigurationError):
        draw_duration(np.random.default_rng(0), "lognormal", 10.0)


@pytest.mark.parametrize("family", ["exponential", "pareto", "weibull"])
def test_draw_duration_mean_roughly_matches(family):
    rng = np.random.default_rng(0)
    mean = 100.0
    samples = [draw_duration(rng, family, mean) for _ in range(4000)]
    assert all(s >= 0 for s in samples)
    # heavy-tailed families converge slowly; allow a generous band
    assert 0.6 * mean < np.mean(samples) < 1.6 * mean


def test_churn_alternates_join_and_leave():
    sim = Simulation()
    events = []
    proc = ChurnProcess(
        sim,
        peers=["p"],
        config=ChurnConfig(mean_session=100.0, mean_offline=50.0),
        on_join=lambda p: events.append(("join", sim.now)),
        on_leave=lambda p: events.append(("leave", sim.now)),
        rng=1,
    )
    proc.start(warmup=10.0)
    sim.run(until=2000.0)
    kinds = [k for k, _t in events]
    # strictly alternating starting with join
    assert kinds[0] == "join"
    assert all(a != b for a, b in zip(kinds, kinds[1:]))
    times = [t for _k, t in events]
    assert times == sorted(times)


def test_online_set_tracks_membership():
    sim = Simulation()
    proc = ChurnProcess(
        sim,
        peers=list(range(20)),
        config=ChurnConfig(mean_session=500.0, mean_offline=500.0),
        on_join=lambda p: None,
        on_leave=lambda p: None,
        rng=2,
    )
    proc.start(warmup=50.0)
    sim.run(until=1000.0)
    assert proc.joins >= proc.leaves
    assert len(proc.online) == proc.joins - proc.leaves


def test_stop_freezes_process():
    sim = Simulation()
    proc = ChurnProcess(
        sim,
        peers=list(range(5)),
        config=ChurnConfig(mean_session=10.0, mean_offline=10.0),
        on_join=lambda p: None,
        on_leave=lambda p: None,
        rng=3,
    )
    proc.start(warmup=1.0)
    sim.run(until=100.0)
    joins_before = proc.joins
    proc.stop()
    sim.run(until=10_000.0)
    assert proc.joins == joins_before


def test_stop_cancels_pending_transitions_so_heap_drains():
    """Regression: stop() used to leave every peer's next transition in
    the heap, keeping the simulation alive for the rest of the run."""
    sim = Simulation()
    proc = ChurnProcess(
        sim,
        peers=list(range(10)),
        config=ChurnConfig(mean_session=50.0, mean_offline=50.0),
        on_join=lambda p: None,
        on_leave=lambda p: None,
        rng=4,
    )
    proc.start(warmup=5.0)
    sim.run(until=500.0)
    assert sim.pending() > 0  # transitions queued while running
    proc.stop()
    assert sim.pending() == 0
    # an unbounded run returns immediately instead of churning forever
    sim.run()
    assert sim.now == 500.0


def test_crash_skips_on_leave_and_revive_rejoins():
    sim = Simulation()
    events = []
    proc = ChurnProcess(
        sim,
        peers=["p"],
        config=ChurnConfig(mean_session=1e9, mean_offline=1e9),
        on_join=lambda p: events.append("join"),
        on_leave=lambda p: events.append("leave"),
        rng=5,
    )
    proc.start(warmup=0.0)
    sim.run(until=10.0)
    assert events == ["join"] and proc.online == {"p"}
    proc.crash("p")
    assert events == ["join"]  # a crash is not a polite departure
    assert proc.crashes == 1 and not proc.online
    sim.run(until=1000.0)
    assert events == ["join"]  # stays dead: pending leave was cancelled
    proc.revive("p", delay=5.0)
    proc.revive("p", delay=5.0)  # idempotent while scheduled
    sim.run(until=2000.0)
    assert events == ["join", "join"] and proc.online == {"p"}
    proc.revive("p")  # no-op for an online peer
    sim.run(until=2100.0)
    assert events == ["join", "join"]


def test_crash_of_offline_peer_is_a_noop():
    sim = Simulation()
    proc = ChurnProcess(
        sim, peers=["p"], config=ChurnConfig(),
        on_join=lambda p: None, on_leave=lambda p: None,
    )
    proc.crash("p")  # never started, never online
    assert proc.crashes == 0


def test_negative_warmup_rejected():
    sim = Simulation()
    proc = ChurnProcess(
        sim, peers=[1], config=ChurnConfig(),
        on_join=lambda p: None, on_leave=lambda p: None,
    )
    with pytest.raises(ConfigurationError):
        proc.start(warmup=-1.0)
