"""RESILIENCE experiment: smoke rows, shape, and trace determinism."""

import functools

from repro.experiments import metrics_snapshot, observability
from repro.experiments.resilience_faults import (
    ARMS,
    SMOKE_SCENARIOS,
    run_resilience_faults,
)


@functools.lru_cache(maxsize=None)
def _smoke_once(repeat: int):
    # ``repeat`` distinguishes independent runs of the same seeded setup
    with observability() as session:
        result = run_resilience_faults(smoke=True)
    return result, metrics_snapshot(session)


def test_smoke_produces_full_grid():
    result, _snap = _smoke_once(0)
    assert len(result.rows) == len(SMOKE_SCENARIOS) * len(ARMS)
    for row in result.rows:
        assert 0.0 <= row["success_rate"] <= 1.0
    # scenario x arm coverage, in sweep order
    assert [(r["scenario"], r["arm"]) for r in result.rows] == [
        (s, a) for s in SMOKE_SCENARIOS for a, _cfg in ARMS
    ]


def test_faults_actually_bite_and_retries_fire():
    result, snap = _smoke_once(0)
    for scenario in SMOKE_SCENARIOS[1:]:  # every non-baseline scenario
        dropped = sum(
            r["messages_dropped"] for r in result.rows
            if r["scenario"] == scenario
        )
        assert dropped > 0, f"{scenario} injected nothing"
    retried = sum(r["requests_retried"] for r in result.rows)
    assert retried > 0
    # the observability layer saw the same story
    assert "faults_injected_total" in snap["metrics"]
    assert "requests_retried_total" in snap["metrics"]


def test_baseline_arms_pay_no_fault_cost():
    result, _snap = _smoke_once(0)
    for row in result.rows:
        if row["scenario"] != "baseline":
            continue
        assert row["success_rate"] == 1.0
        assert row["messages_dropped"] == 0
        assert row["requests_failed"] == 0


def test_seeded_run_is_deterministic():
    """Two in-process runs of the same seeded sweep produce identical
    rows and an identical trace digest — the acceptance criterion for
    the fault layer's determinism."""
    result_a, snap_a = _smoke_once(0)
    result_b, snap_b = _smoke_once(1)
    assert result_a.rows == result_b.rows
    assert snap_a["trace"]["digest"] == snap_b["trace"]["digest"]
    assert snap_a["trace"]["events_emitted"] == snap_b["trace"]["events_emitted"]
    assert snap_a["trace"]["events_emitted"] > 10_000
