"""Cross-cutting determinism: identical seeds reproduce experiments
bit-for-bit — the property every EXPERIMENTS.md number relies on."""

import numpy as np
import pytest

from repro.experiments import run_fig2, run_fig6, run_table1
from repro.experiments.fig4_ics import run_fig4_embedding


def _rows_equal(a, b):
    assert len(a.rows) == len(b.rows)
    for ra, rb in zip(a.rows, b.rows):
        assert ra.keys() == rb.keys()
        for k in ra:
            va, vb = ra[k], rb[k]
            if isinstance(va, float):
                assert va == vb, (k, va, vb)
            else:
                assert va == vb, (k, va, vb)


def test_fig2_deterministic():
    _rows_equal(run_fig2(), run_fig2())


def test_fig6_deterministic():
    _rows_equal(run_fig6(n_hosts=60, seed=5), run_fig6(n_hosts=60, seed=5))


def test_fig4b_deterministic():
    _rows_equal(
        run_fig4_embedding(n_hosts=30, n_beacons=8, seed=3),
        run_fig4_embedding(n_hosts=30, n_beacons=8, seed=3),
    )


def test_table1_deterministic():
    _rows_equal(run_table1(n_hosts=40, seed=9), run_table1(n_hosts=40, seed=9))


def test_different_seeds_differ():
    a = run_fig6(n_hosts=60, seed=5)
    b = run_fig6(n_hosts=60, seed=6)
    va = a.row_by("arm", "biased")["intra_as_edge_fraction"]
    vb = b.row_by("arm", "biased")["intra_as_edge_fraction"]
    assert va != vb


@pytest.mark.scale
def test_scale_smoke_100k_hosts_no_slot_leak():
    """10^5-host churn smoke: the free-list allocator must not leak host
    slots across crash/evict/revive cycles, and the run must stay inside
    a bounded memory envelope (deselect with ``-m 'not scale'`` on
    memory-limited CI runners)."""
    import resource

    from repro.core.peerstate import PeerState
    from repro.sim import ChurnConfig, ChurnProcess, Simulation

    n = 100_000
    peers = list(range(n))
    state = PeerState(initial_capacity=n)
    sim = Simulation()
    churn = ChurnProcess(
        sim, peers, ChurnConfig(mean_session=1e7, mean_offline=1e7),
        lambda p: None, lambda p: None,
        rng=17, peerstate=state, region_of=lambda p: p % 64,
    )
    churn.start(warmup=600.0)
    sim.run(until=700.0)
    # a few peers may draw (rare) short sessions; the column count must
    # track the join/leave ledger exactly either way
    assert state.online_count() == churn.joins - churn.leaves
    assert state.online_count() > 0.99 * n
    assert state.slots.high_water == n

    # churn revive cycles over a rotating subset: every crash/evict frees
    # a slot and every revive must recycle one, never allocate fresh
    rng = np.random.default_rng(17)
    for cycle in range(5):
        victims = rng.choice(n, size=2000, replace=False)
        for v in victims:
            v = int(v)
            churn.crash(v)
            state.evict(v)
        for v in victims:
            churn.revive(int(v), delay=1.0)
        sim.run(until=sim.now + 10.0)
        state.slots.check_invariants()
    assert state.slots.high_water == n  # zero leaked slots
    assert state.slots.recycles >= 5 * 2000
    # every join put a peer online, every leave/crash took one offline
    assert state.online_count() == churn.joins - churn.leaves - churn.crashes
    assert state.online_count() > 0.99 * n

    # bounded memory: the columns themselves are a few MB, and the whole
    # process (arrays + sim heap + interpreter) stays well under 2 GiB
    assert state.memory_bytes() < 64 * 2**20
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    assert peak_kb < 2 * 2**20, f"peak RSS {peak_kb / 2**20:.2f} GiB"
