"""Cross-cutting determinism: identical seeds reproduce experiments
bit-for-bit — the property every EXPERIMENTS.md number relies on."""

import numpy as np

from repro.experiments import run_fig2, run_fig6, run_table1
from repro.experiments.fig4_ics import run_fig4_embedding


def _rows_equal(a, b):
    assert len(a.rows) == len(b.rows)
    for ra, rb in zip(a.rows, b.rows):
        assert ra.keys() == rb.keys()
        for k in ra:
            va, vb = ra[k], rb[k]
            if isinstance(va, float):
                assert va == vb, (k, va, vb)
            else:
                assert va == vb, (k, va, vb)


def test_fig2_deterministic():
    _rows_equal(run_fig2(), run_fig2())


def test_fig6_deterministic():
    _rows_equal(run_fig6(n_hosts=60, seed=5), run_fig6(n_hosts=60, seed=5))


def test_fig4b_deterministic():
    _rows_equal(
        run_fig4_embedding(n_hosts=30, n_beacons=8, seed=3),
        run_fig4_embedding(n_hosts=30, n_beacons=8, seed=3),
    )


def test_table1_deterministic():
    _rows_equal(run_table1(n_hosts=40, seed=9), run_table1(n_hosts=40, seed=9))


def test_different_seeds_differ():
    a = run_fig6(n_hosts=60, seed=5)
    b = run_fig6(n_hosts=60, seed=6)
    va = a.row_by("arm", "biased")["intra_as_edge_fraction"]
    vb = b.row_by("arm", "biased")["intra_as_edge_fraction"]
    assert va != vb
