"""Bootstrapper lifecycle and the control/data socket front end.

The async paths run through ``asyncio.run`` inside synchronous tests
(no pytest-asyncio dependency).
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    Bootstrapper,
    ControlServer,
    LoadReport,
    ServiceConfig,
)

SMALL = dict(n_hosts=20, settle_ms=5_000.0, n_seed_keys=4, seed=11)


def test_service_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(overlay="chord")
    with pytest.raises(ConfigurationError):
        ServiceConfig(n_hosts=2)
    with pytest.raises(ConfigurationError):
        ServiceConfig(settle_ms=0.0)


def test_lifecycle_guards():
    boot = Bootstrapper(ServiceConfig(**SMALL))
    with pytest.raises(ConfigurationError):
        boot.drive_sync()  # not started
    with pytest.raises(ConfigurationError):
        boot.drain_sync()
    boot.build()
    with pytest.raises(ConfigurationError):
        boot.build()  # double start
    boot.stop_sync()
    assert boot.state == "stopped"
    assert boot.stop_sync()["state"] == "stopped"  # idempotent
    with pytest.raises(ConfigurationError):
        boot.drive_sync()  # stopped


def test_kademlia_sync_build_and_drive():
    boot = Bootstrapper(ServiceConfig(overlay="kademlia", **SMALL))
    stats = boot.build()
    assert stats["state"] == "ready"
    assert len(boot.ops.keys) == SMALL["n_seed_keys"]
    report = boot.drive_sync(
        process="poisson", rate_per_s=10.0,
        duration_ms=3_000.0, drain_ms=5_000.0,
    )
    assert isinstance(report, LoadReport)
    assert report.issued == report.offered > 0
    assert report.succeeded > 0
    assert report.latency_ms["p50"] > 0
    assert boot.stats()["drives"] == 1
    assert boot.stats()["last_report"]["mode"] == "open"
    drained = boot.drain_sync(drain_ms=1_000.0)
    assert drained["pending_after"] <= drained["pending_before"]


def test_gnutella_closed_loop_drive():
    boot = Bootstrapper(ServiceConfig(overlay="gnutella", **SMALL))
    boot.build()
    report = boot.drive_sync(
        mode="closed", n_workers=3,
        duration_ms=3_000.0, drain_ms=3_000.0, timeout_ms=2_000.0,
    )
    assert report.mode == "closed"
    assert report.issued > 0
    # every op reaches a terminal state: hit, or timed out in-window
    assert report.succeeded + report.failed + report.timed_out == report.issued
    boot.stop_sync()


def test_unknown_drive_mode_rejected():
    boot = Bootstrapper(ServiceConfig(**SMALL))
    boot.build()
    with pytest.raises(ConfigurationError):
        boot.drive_sync(mode="ajar")


def test_async_facade_runs_in_executor():
    async def main():
        boot = Bootstrapper(ServiceConfig(**SMALL))
        stats = await boot.start()
        assert stats["state"] == "ready"
        report = await boot.drive(
            process="pareto", rate_per_s=8.0,
            duration_ms=2_000.0, drain_ms=4_000.0,
        )
        assert report.issued > 0
        assert (await boot.drain(drain_ms=500.0))["pending_after"] >= 0
        assert (await boot.stop())["state"] == "stopped"

    asyncio.run(main())


def test_control_and_data_sockets_round_trip():
    async def main():
        boot = Bootstrapper(ServiceConfig(**SMALL))
        server = ControlServer(boot)
        await server.start()
        dr, dw = await asyncio.open_connection(*server.data_address)
        cr, cw = await asyncio.open_connection(*server.control_address)

        async def command(obj):
            cw.write((json.dumps(obj) + "\n").encode())
            await cw.drain()
            return json.loads(await cr.readline())

        assert await command({"cmd": "ping"}) == {"ok": True, "result": "pong"}
        started = await command({"cmd": "start"})
        assert started["ok"] and started["result"]["state"] == "ready"

        reply = await command({
            "cmd": "drive", "process": "poisson", "rate_per_s": 8.0,
            "duration_ms": 2_000.0, "drain_ms": 4_000.0,
        })
        assert reply["ok"]
        assert reply["result"]["issued"] > 0

        # malformed input and unknown commands answer on the wire
        cw.write(b"this is not json\n")
        await cw.drain()
        assert json.loads(await cr.readline())["ok"] is False
        assert (await command({"cmd": "warp"}))["ok"] is False
        # errors from the bootstrapper surface, connection stays usable
        assert (await command({"cmd": "start"}))["ok"] is False

        stats = await command({"cmd": "stats"})
        assert stats["result"]["drives"] == 1
        assert (await command({"cmd": "stop"}))["result"]["state"] == "stopped"

        # the data subscriber saw the whole lifecycle in order
        events = [json.loads(await dr.readline())["event"] for _ in range(3)]
        assert events == ["ready", "report", "stopped"]

        cw.close()
        dw.close()
        await server.stop()

    asyncio.run(main())
