"""Unit tests for the parallel sweep runner (:mod:`repro.runner`)."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.errors import RunnerError
from repro.runner import (
    ENV_SERIAL,
    ENV_WORKERS,
    configure_default_workers,
    default_workers,
    resolve_workers,
    run_arms,
)


@pytest.fixture(autouse=True)
def _clean_runner_state(monkeypatch):
    """No configured default and no runner env vars leak between tests."""
    monkeypatch.delenv(ENV_SERIAL, raising=False)
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    configure_default_workers(None)
    yield
    configure_default_workers(None)


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_defaults_to_serial(self):
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_argument_wins(self):
        assert resolve_workers(4) == 4

    def test_configured_default(self):
        configure_default_workers(3)
        assert default_workers() == 3
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2  # explicit still wins

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "5")
        assert resolve_workers() == 5

    def test_env_workers_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(RunnerError):
            resolve_workers()

    def test_serial_env_overrides_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_SERIAL, "1")
        configure_default_workers(8)
        assert resolve_workers(16) == 1

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(RunnerError):
            configure_default_workers(0)


class TestRunArms:
    def test_empty_arms(self):
        assert run_arms(_square, [], workers=4) == []

    def test_serial_maps_in_order(self):
        assert run_arms(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_preserves_arm_order(self):
        arms = list(range(20))
        assert run_arms(_square, arms, workers=4) == [a * a for a in arms]

    def test_parallel_equals_serial(self):
        arms = [3, 1, 4, 1, 5, 9, 2, 6]
        assert run_arms(_square, arms, workers=3) == run_arms(
            _square, arms, workers=1
        )

    def test_closures_and_lambdas_cross_the_fork(self):
        # fork inherits the closure; nothing about fn is pickled
        offset = 100
        out = run_arms(lambda a: a + offset, [1, 2, 3], workers=2)
        assert out == [101, 102, 103]

    def test_single_arm_stays_serial(self):
        pid = os.getpid()
        out = run_arms(lambda _a: os.getpid(), [0], workers=4)
        assert out == [pid]

    def test_parallel_actually_uses_other_processes(self):
        pids = set(run_arms(lambda _a: os.getpid(), [0, 1, 2, 3], workers=2))
        assert os.getpid() not in pids
        assert len(pids) >= 1

    def test_worker_exception_raises_runner_error_with_traceback(self):
        def boom(a):
            if a == 2:
                raise ValueError("kaboom-in-worker")
            return a

        with pytest.raises(RunnerError, match="kaboom-in-worker"):
            run_arms(boom, [1, 2, 3], workers=2)

    def test_serial_env_forces_in_process_execution(self, monkeypatch):
        monkeypatch.setenv(ENV_SERIAL, "1")
        pid = os.getpid()
        out = run_arms(lambda _a: os.getpid(), [0, 1, 2], workers=4)
        assert out == [pid, pid, pid]


class TestRunnerObservability:
    def test_serial_records_parent_metrics(self):
        with obs.observe() as session:
            run_arms(_square, [1, 2, 3], workers=1)
        arms = session.registry.get("runner_arms_total")
        assert arms.value(mode="serial") == 3.0
        assert session.registry.get("runner_workers").value() == 1.0
        assert session.registry.get("runner_arm_seconds").count() == 3

    def test_parallel_records_parent_metrics(self):
        with obs.observe() as session:
            run_arms(_square, [1, 2, 3, 4], workers=2)
        arms = session.registry.get("runner_arms_total")
        assert arms.value(mode="parallel") == 4.0
        assert session.registry.get("runner_workers").value() == 2.0
        assert session.registry.get("runner_arm_seconds").count() == 4

    def test_worker_counters_merge_home(self):
        def armfn(a):
            reg = obs.active_registry()
            reg.counter("sweep_probe_total", "probe", ("arm",)).inc(
                a, arm=str(a)
            )
            return a

        with obs.observe() as session:
            run_arms(armfn, [1, 2, 3], workers=2)
        merged = session.registry.get("sweep_probe_total")
        assert merged is not None
        assert merged.total() == 6.0
        assert merged.value(arm="2") == 2.0

    def test_worker_scope_is_isolated_from_parent_trace(self):
        # parallel arms must not write into the parent's tracer: only
        # parent-side events (none here) appear
        with obs.observe() as session:
            run_arms(_square, [1, 2, 3, 4], workers=2)
        assert session.tracer.emitted == 0

    def test_no_registry_no_crash(self):
        # outside any observe() scope the runner records nothing and
        # the worker counter snapshots are dropped silently
        assert run_arms(_square, [5], workers=1) == [25]


class TestRunnerSubstrateCacheSharing:
    def test_workers_share_disk_tier(self, tmp_path):
        """Cold workers racing on one disk dir leave exactly one valid
        entry per substrate; every worker returns a usable underlay."""
        from repro.underlay import UnderlayConfig, substrate_digest
        from repro.underlay.cache import (
            SubstrateCache,
            configure_default_cache,
            disable_default_cache,
        )

        config = UnderlayConfig(n_hosts=20, seed=11)
        configure_default_cache(disk_dir=tmp_path)
        try:
            def arm(_i):
                from repro.underlay.cache import cached_generate

                underlay = cached_generate(config)
                return float(underlay.latency_matrix[0, 1])

            values = run_arms(arm, [0, 1, 2, 3], workers=2)
        finally:
            disable_default_cache()
        assert len(set(values)) == 1  # all workers agree
        entry = tmp_path / f"substrate-{substrate_digest(config)}.npz"
        assert entry.exists()
        assert not list(tmp_path.glob("*.tmp.npz"))  # no half-written junk
        # the published entry is complete: a fresh cache warms from it
        warm = SubstrateCache(disk_dir=tmp_path)
        underlay = warm.get_or_generate(config)
        assert float(underlay.latency_matrix[0, 1]) == values[0]
