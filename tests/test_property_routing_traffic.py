"""Property tests over generated topologies: valley-free routing and
traffic-accounting conservation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.underlay import (
    ASRouting,
    TopologyConfig,
    TrafficAccountant,
    Underlay,
    UnderlayConfig,
    generate_topology,
)

topo_configs = st.builds(
    TopologyConfig,
    n_tier1=st.integers(min_value=1, max_value=4),
    n_tier2=st.integers(min_value=2, max_value=8),
    n_stub=st.integers(min_value=2, max_value=15),
    n_regions=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


def _is_valley_free(topo, path):
    phase = "up"
    for a, b in zip(path, path[1:]):
        asys = topo.asys(a)
        if b in asys.providers:
            step = "up"
        elif b in asys.peers:
            step = "peer"
        elif b in asys.customers:
            step = "down"
        else:
            return False
        if phase == "up":
            phase = step
        elif phase in ("peer", "down"):
            if step != "down":
                return False
            phase = "down"
    return True


@settings(max_examples=25, deadline=None)
@given(topo_configs)
def test_generated_topologies_fully_valley_free_routable(cfg):
    topo = generate_topology(cfg)
    routing = ASRouting(topo)
    mat = routing.hop_matrix()  # raises if any pair unroutable
    assert (mat >= 0).all()
    # spot-check path structure from a few sources
    n = len(topo)
    for src in range(0, n, max(1, n // 4)):
        for dst in range(0, n, max(1, n // 3)):
            path = routing.path(src, dst)
            assert path[0] == src and path[-1] == dst
            assert len(set(path)) == len(path)  # loop-free
            assert _is_valley_free(topo, path), path


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=1, max_value=10_000),
        ),
        min_size=1,
        max_size=30,
    ),
)
def test_traffic_accounting_conserves_bytes(seed, messages):
    underlay = Underlay.generate(UnderlayConfig(n_hosts=30, seed=seed % 100))
    acct = TrafficAccountant(underlay.topology, underlay.routing, underlay.asn_of)
    ids = underlay.host_ids()
    sent = 0
    for src_i, dst_i, size in messages:
        src, dst = ids[src_i], ids[dst_i]
        if src == dst:
            continue
        acct.observe(src, dst, size, "K")
        sent += size
    # every sent byte lands in exactly one class
    assert acct.summary.total_bytes == sent
    # link-level bytes: each inter-AS message charges each traversed link
    # once, so link totals are at least the inter-AS class totals
    inter = acct.summary.peering_bytes + acct.summary.transit_bytes
    assert sum(acct.link_bytes.values()) >= inter
    # paying ASes exist iff transit was crossed
    assert bool(acct.paid_transit_bytes) == (acct.summary.transit_bytes > 0)
