"""SERVICE experiment: smoke grid, row schema, determinism."""

import pytest

from repro.experiments import run_service_slo
from repro.experiments.service_slo import OVERLAY_ARMS, PROCESS_ARMS

REQUIRED_COLUMNS = {
    "overlay", "mode", "process", "rate_per_s", "offered", "offered_per_s",
    "throughput_per_s", "success_rate", "timed_out", "unfinished",
    "p50", "p95", "p99", "mean",
}


@pytest.fixture(scope="module")
def smoke_result():
    return run_service_slo(
        smoke=True, n_hosts=16,
        duration_ms=4_000.0, settle_ms=5_000.0,
        drain_ms=5_000.0, timeout_ms=4_000.0,
    )


def test_grid_covers_overlays_processes_and_both_loops(smoke_result):
    rows = smoke_result.rows
    assert len(rows) == len(OVERLAY_ARMS) * (len(PROCESS_ARMS) + 1)
    open_cells = {
        (r["overlay"], r["process"]) for r in rows if r["mode"] == "open"
    }
    assert open_cells == {
        (o, p) for o in OVERLAY_ARMS for p in PROCESS_ARMS
    }
    closed = [r for r in rows if r["mode"] == "closed"]
    assert {r["overlay"] for r in closed} == set(OVERLAY_ARMS)


def test_rows_report_slo_columns(smoke_result):
    for row in smoke_result.rows:
        assert REQUIRED_COLUMNS <= set(row)
        assert row["offered"] > 0
        assert 0.0 <= row["success_rate"] <= 1.0
        if row["success_rate"] > 0:
            assert row["p50"] <= row["p95"] <= row["p99"]
            assert row["p50"] > 0


def test_kademlia_open_loop_succeeds_under_every_process(smoke_result):
    for row in smoke_result.rows:
        if row["overlay"] == "kademlia" and row["mode"] == "open":
            assert row["success_rate"] > 0.9, row
            assert row["throughput_per_s"] > 0


def test_notes_summarise_tail_by_process(smoke_result):
    assert any("p99 by arrival process" in n for n in smoke_result.notes)


def test_rows_identical_at_any_worker_count():
    kwargs = dict(
        smoke=True, n_hosts=12, duration_ms=2_000.0,
        settle_ms=4_000.0, drain_ms=3_000.0, timeout_ms=2_000.0,
    )
    serial = run_service_slo(workers=1, **kwargs)
    parallel = run_service_slo(workers=2, **kwargs)
    assert serial.rows == parallel.rows
