"""Unit tests for the ISP cost model (Figure 2 economics)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.underlay import CostModel, CostParams


@pytest.fixture()
def model():
    return CostModel(CostParams(transit_usd_per_mbps_month=10.0,
                                peering_flat_usd_month=2000.0))


def test_params_validation():
    with pytest.raises(ConfigurationError):
        CostParams(transit_usd_per_mbps_month=0)
    with pytest.raises(ConfigurationError):
        CostParams(billing_percentile=0)


def test_transit_cost_proportional(model):
    assert model.transit_monthly_cost(100.0) == pytest.approx(1000.0)
    assert model.transit_monthly_cost(200.0) == pytest.approx(
        2 * model.transit_monthly_cost(100.0)
    )


def test_transit_per_mbps_constant(model):
    assert model.transit_cost_per_mbps(1.0) == model.transit_cost_per_mbps(1e4)


def test_peering_flat_and_inverse_per_mbps(model):
    assert model.peering_monthly_cost(10.0) == model.peering_monthly_cost(1e4)
    assert model.peering_cost_per_mbps(200.0) == pytest.approx(10.0)
    # inverse proportionality: double traffic -> half unit cost
    assert model.peering_cost_per_mbps(400.0) == pytest.approx(
        model.peering_cost_per_mbps(200.0) / 2
    )


def test_crossover(model):
    x = model.crossover_mbps()
    assert x == pytest.approx(200.0)
    assert model.transit_monthly_cost(x) == pytest.approx(
        model.peering_monthly_cost()
    )
    # beyond the crossover peering wins
    assert model.transit_monthly_cost(2 * x) > model.peering_monthly_cost()


def test_percentile_billing_ignores_rare_spikes(model):
    samples = [10.0] * 99 + [1000.0]
    assert model.billable_mbps(samples) < 1000.0
    assert model.billable_mbps(samples, percentile=100) == pytest.approx(1000.0)


def test_billable_empty_is_zero(model):
    assert model.billable_mbps([]) == 0.0


def test_billable_rejects_negative(model):
    with pytest.raises(ConfigurationError):
        model.billable_mbps([1.0, -2.0])


def test_figure2_series_shape(model):
    rows = model.figure2_series([1.0, 10.0, 100.0])
    assert len(rows) == 3
    assert rows[0]["transit_per_mbps_usd"] == rows[2]["transit_per_mbps_usd"]
    assert rows[0]["peering_per_mbps_usd"] > rows[2]["peering_per_mbps_usd"]


def test_figure2_rejects_nonpositive_traffic(model):
    with pytest.raises(ConfigurationError):
        model.figure2_series([0.0])
