"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation


def test_runs_events_in_time_order():
    sim = Simulation()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    sim = Simulation()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulation()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]
    assert sim.now == 7.5


def test_run_until_stops_before_later_events():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 2)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == [1, 2]


def test_events_scheduled_during_run_are_processed():
    sim = Simulation()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_cancelled_event_does_not_fire():
    sim = Simulation()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, fired.append, "y")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["y"]


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulation(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_max_events_limits_processing():
    sim = Simulation()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_raising_callback_does_not_advance_clock_to_until():
    sim = Simulation()
    sim.schedule(1.0, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    sim.schedule(50.0, lambda: None)
    with pytest.raises(RuntimeError):
        sim.run(until=100.0)
    # the run did not complete: the clock stays at the failing event, not
    # at the horizon, so a recovered caller resumes from the right time
    assert sim.now == 1.0
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_max_events_cut_short_does_not_advance_clock_to_until():
    sim = Simulation()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run(until=100.0, max_events=4)
    assert sim.now == 3.0  # stopped early: horizon not reached
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_pending_and_peek():
    sim = Simulation()
    assert sim.peek_time() is None
    h = sim.schedule(2.0, lambda: None)
    sim.schedule(4.0, lambda: None)
    assert sim.peek_time() == 2.0
    assert sim.pending() == 2
    h.cancel()
    assert sim.peek_time() == 4.0
    assert sim.pending() == 1


def test_step_returns_false_on_empty_queue():
    sim = Simulation()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulation()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


# -- edge cases around cancellation and the processed counter ------------------


def test_cancel_after_fire_is_harmless_noop():
    sim = Simulation()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert handle.fired
    # cancelling an already-fired event does nothing and reports failure
    assert handle.cancel() is False
    assert handle.cancelled is False
    assert sim.events_processed == 1
    sim.run()  # still harmless with an empty queue
    assert fired == ["x"]


def test_cancel_is_idempotent_and_reports_first_win():
    sim = Simulation()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.cancel() is True
    assert handle.cancel() is False  # second cancel is a no-op
    assert handle.cancelled
    sim.run()
    assert sim.events_processed == 0


def test_schedule_before_now_rejected_mid_run():
    sim = Simulation()
    errors = []

    def bad():
        try:
            sim.schedule_at(sim.now - 1.0, lambda: None)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(5.0, bad)
    sim.run()
    assert len(errors) == 1


def test_events_processed_excludes_cancelled_events():
    sim = Simulation()
    handles = [sim.schedule(float(i), lambda: None) for i in range(10)]
    for h in handles[::2]:
        h.cancel()
    sim.run()
    assert sim.events_processed == 5
    # cancelled handles never flip to fired
    assert all(not h.fired for h in handles[::2])
    assert all(h.fired for h in handles[1::2])


# -- schedule_many: batch insertion with schedule() semantics ----------------

def test_schedule_many_matches_serial_schedule_order():
    """A batch behaves exactly like schedule() called once per item:
    time order first, then insertion (seq) order inside a tie."""
    items = [(3.0, ("c",)), (1.0, ("a",)), (1.0, ("b",)), (0.0, ("z",))]

    serial_order = []
    sim_a = Simulation()
    for delay, args in items:
        sim_a.schedule(delay, serial_order.append, *args)
    sim_a.run()

    batch_order = []
    sim_b = Simulation()
    sim_b.schedule_many(
        (delay, batch_order.append, args) for delay, args in items
    )
    sim_b.run()
    assert batch_order == serial_order == ["z", "a", "b", "c"]


def test_schedule_many_interleaves_with_schedule_on_ties():
    """Seq assignment is global: a batch scheduled before a single event
    at the same time fires first, and vice versa."""
    sim = Simulation()
    order = []
    sim.schedule_many([(5.0, order.append, ("batch1",))])
    sim.schedule(5.0, order.append, "single")
    sim.schedule_many([(5.0, order.append, ("batch2",))])
    sim.run()
    assert order == ["batch1", "single", "batch2"]


def test_schedule_many_empty_batch():
    sim = Simulation()
    assert sim.schedule_many([]) == []
    assert sim.pending() == 0


def test_schedule_many_rejects_negative_delay():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule_many([(1.0, lambda: None, ()), (-0.5, lambda: None, ())])


def test_schedule_many_large_batch_onto_nonempty_heap():
    """The heapify path (batch >> pending) must preserve the pending
    events and the global ordering."""
    sim = Simulation()
    order = []
    sim.schedule(2.5, order.append, "pending")
    sim.schedule_many(
        (float(i % 5), order.append, (i,)) for i in range(50)
    )
    sim.run()
    expected = sorted(range(50), key=lambda i: (i % 5, i))
    expected.insert(
        sum(1 for i in range(50) if i % 5 <= 2), "pending"
    )
    assert order == expected
    assert sim.events_processed == 51


def test_schedule_many_handles_cancel_then_fire_ordering():
    """O(1) lazy cancel on batch-scheduled events: cancelled entries are
    skipped at pop time, survivors keep their tie-break order, and
    fired/cancelled semantics match single-event handles."""
    sim = Simulation()
    order = []
    handles = sim.schedule_many(
        [(1.0, order.append, (i,)) for i in range(6)]
    )
    assert [h.cancel() for h in handles[::2]] == [True, True, True]
    sim.run()
    assert order == [1, 3, 5]
    assert sim.events_processed == 3
    for h in handles[::2]:
        assert h.cancelled and not h.fired
        assert h.cancel() is False  # idempotent after cancel
    for h in handles[1::2]:
        assert h.fired and not h.cancelled
        assert h.cancel() is False  # and after fire


def test_schedule_many_cancel_mid_run_before_fire():
    """An event can cancel a later same-batch event before it fires."""
    sim = Simulation()
    order = []
    handles = sim.schedule_many(
        [(1.0, order.append, ("a",)), (2.0, order.append, ("b",))]
    )
    sim.schedule(1.5, handles[1].cancel)
    sim.run()
    assert order == ["a"]
    assert handles[1].cancelled and not handles[1].fired


def test_schedule_many_traces_like_schedule():
    """Batch scheduling emits the same per-event trace records."""
    from repro import obs

    digests = []
    for batched in (False, True):
        with obs.observe() as session:
            sim = Simulation()
            if batched:
                sim.schedule_many(
                    [(1.0, _noop, ()), (2.0, _noop, ())]
                )
            else:
                sim.schedule(1.0, _noop)
                sim.schedule(2.0, _noop)
            sim.run()
        digests.append(session.tracer.digest())
    assert digests[0] == digests[1]


def _noop():
    pass
