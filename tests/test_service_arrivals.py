"""Arrival processes: rates, tails, modulation, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import (
    ARRIVAL_PROCESSES,
    DiurnalArrivals,
    ParetoArrivals,
    PoissonArrivals,
    exponential_interarrival_times,
    make_arrivals,
)


def test_exponential_interarrival_times_shape_and_mean():
    rng = np.random.default_rng(1)
    times = exponential_interarrival_times(rng, 5000, 100.0)
    assert times.shape == (5000,)
    assert np.all(np.diff(times) > 0) or np.all(np.diff(times) >= 0)
    assert float(np.mean(np.diff(times))) == pytest.approx(100.0, rel=0.1)
    with pytest.raises(ConfigurationError):
        exponential_interarrival_times(rng, -1, 100.0)
    with pytest.raises(ConfigurationError):
        exponential_interarrival_times(rng, 10, 0.0)


@pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
def test_mean_rate_is_honoured(name):
    proc = make_arrivals(name, 50.0, rng=3)
    times = proc.times(200_000.0)
    assert np.all(times >= 0) and np.all(times < 200_000.0)
    assert np.all(np.diff(times) >= 0)
    # expectation 50/s * 200s = 10_000 events; heavy tails need slack
    assert len(times) == pytest.approx(10_000, rel=0.25)


@pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
def test_seeded_schedules_are_deterministic(name):
    a = make_arrivals(name, 20.0, rng=9).times(30_000.0)
    b = make_arrivals(name, 20.0, rng=9).times(30_000.0)
    np.testing.assert_array_equal(a, b)
    c = make_arrivals(name, 20.0, rng=10).times(30_000.0)
    assert len(a) != len(c) or not np.array_equal(a, c)


def test_pareto_has_fatter_tail_than_poisson_at_equal_rate():
    horizon = 500_000.0
    poisson = PoissonArrivals(40.0, rng=5).times(horizon)
    pareto = ParetoArrivals(40.0, alpha=1.3, rng=5).times(horizon)
    # comparable totals (equal mean rate) ...
    assert len(pareto) == pytest.approx(len(poisson), rel=0.35)
    # ... but the heavy-tail gap distribution has a larger max gap
    assert np.max(np.diff(pareto)) > np.max(np.diff(poisson))


def test_diurnal_modulation_and_trough_start():
    proc = DiurnalArrivals(30.0, peak_to_trough=4.0, period_ms=40_000.0, rng=2)
    assert proc.amplitude == pytest.approx(0.6)
    t = np.array([0.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0])
    m = proc.modulation(t)
    # starts at the trough, peaks mid-period, back to trough
    assert m[0] == pytest.approx(0.4)
    assert m[2] == pytest.approx(1.6)
    assert m[4] == pytest.approx(0.4)
    assert m[2] / m[0] == pytest.approx(4.0)
    # the first half-period must be visibly quieter than the second quarter
    times = proc.times(40_000.0)
    first = np.sum(times < 10_000.0)
    peak = np.sum((times >= 15_000.0) & (times < 25_000.0))
    assert peak > first


def test_validation():
    with pytest.raises(ConfigurationError):
        make_arrivals("weibull", 10.0)
    with pytest.raises(ConfigurationError):
        PoissonArrivals(0.0)
    with pytest.raises(ConfigurationError):
        ParetoArrivals(10.0, alpha=1.0)
    with pytest.raises(ConfigurationError):
        DiurnalArrivals(10.0, peak_to_trough=0.5)
    with pytest.raises(ConfigurationError):
        DiurnalArrivals(10.0, period_ms=0.0)
    with pytest.raises(ConfigurationError):
        PoissonArrivals(10.0).times(0.0)


def test_make_arrivals_forwards_kwargs():
    proc = make_arrivals("pareto", 10.0, rng=1, alpha=2.5)
    assert isinstance(proc, ParetoArrivals)
    assert proc.alpha == 2.5
    assert proc.rate_per_ms == pytest.approx(0.01)
