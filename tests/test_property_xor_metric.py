"""Property tests: the XOR metric and id-space invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.kademlia import (
    ID_SPACE,
    bucket_index,
    sort_by_distance,
    xor_distance,
)

ids = st.integers(min_value=0, max_value=ID_SPACE - 1)


@given(ids, ids)
def test_symmetry(a, b):
    assert xor_distance(a, b) == xor_distance(b, a)


@given(ids)
def test_identity(a):
    assert xor_distance(a, a) == 0


@given(ids, ids)
def test_zero_iff_equal(a, b):
    assert (xor_distance(a, b) == 0) == (a == b)


@given(ids, ids, ids)
def test_triangle_inequality(a, b, c):
    # XOR satisfies d(a,c) <= d(a,b) + d(b,c)
    assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)


@given(ids, ids, ids)
def test_unidirectionality(a, b, target):
    # distinct points have distinct distances to any target
    if a != b:
        assert xor_distance(a, target) != xor_distance(b, target)


@given(ids, ids)
def test_bucket_index_bounds_distance(a, b):
    if a == b:
        return
    i = bucket_index(a, b)
    d = xor_distance(a, b)
    assert 2**i <= d < 2 ** (i + 1)


@given(st.lists(ids, min_size=1, max_size=20, unique=True), ids)
def test_sort_by_distance_is_sorted_permutation(lst, target):
    out = sort_by_distance(lst, target)
    assert sorted(out) == sorted(lst)
    dists = [xor_distance(x, target) for x in out]
    assert dists == sorted(dists)
