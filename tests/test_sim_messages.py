"""Unit tests for the message bus."""

import pytest

from repro.errors import SimulationError
from repro.sim import MessageBus, Simulation


class FixedLatency:
    def __init__(self, delay=5.0):
        self.delay = delay

    def one_way_delay(self, src, dst):
        return self.delay


class Recorder:
    def __init__(self):
        self.seen = []

    def observe(self, src, dst, size_bytes, kind):
        self.seen.append((src, dst, size_bytes, kind))


def test_delivery_after_latency():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(7.0))
    got = []
    bus.register("b", lambda m: got.append((sim.now, m.payload)))
    bus.send("a", "b", "HELLO", payload=42)
    sim.run()
    assert got == [(7.0, 42)]


def test_message_ordering_preserved_for_same_pair():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(1.0))
    got = []
    bus.register("b", lambda m: got.append(m.payload))
    for i in range(5):
        bus.send("a", "b", "SEQ", payload=i)
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_drop_without_handler_is_counted_not_fatal():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency())
    bus.send("a", "ghost", "X")
    sim.run()
    assert bus.stats.dropped_no_handler == 1
    assert bus.stats.delivered == 0


def test_unregister_mid_flight_drops_message():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(10.0))
    got = []
    bus.register("b", lambda m: got.append(m))
    bus.send("a", "b", "X")
    bus.unregister("b")
    sim.run()
    assert got == []
    assert bus.stats.dropped_no_handler == 1


def test_stats_by_kind_and_bytes():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency())
    bus.register("b", lambda m: None)
    bus.send("a", "b", "PING", size_bytes=10)
    bus.send("a", "b", "PING", size_bytes=10)
    bus.send("a", "b", "QUERY", size_bytes=50)
    sim.run()
    assert bus.stats.by_kind == {"PING": 2, "QUERY": 1}
    assert bus.stats.bytes_sent == 70
    assert bus.stats.sent == 3
    assert bus.stats.delivered == 3


def test_observer_sees_every_send():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency())
    rec = Recorder()
    bus.add_observer(rec)
    bus.register("b", lambda m: None)
    bus.send("a", "b", "K", size_bytes=9)
    bus.send("b", "a", "K", size_bytes=9)  # even without receiver handler
    sim.run()
    assert rec.seen == [("a", "b", 9, "K"), ("b", "a", 9, "K")]


def test_negative_size_rejected():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency())
    with pytest.raises(SimulationError):
        bus.send("a", "b", "X", size_bytes=-1)


def test_extra_delay_added():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(2.0))
    got = []
    bus.register("b", lambda m: got.append(sim.now))
    bus.send("a", "b", "X", extra_delay=3.0)
    sim.run()
    assert got == [5.0]


def test_is_registered():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency())
    assert not bus.is_registered("a")
    bus.register("a", lambda m: None)
    assert bus.is_registered("a")


# -- send_many: batched fan-out with send() semantics ------------------------

def test_send_many_equals_send_loop():
    """Same deliveries, same times, same stats as a per-dst send loop."""
    def fanout(batched):
        sim = Simulation()
        bus = MessageBus(sim, FixedLatency(2.0))
        got = []
        for dst in ("b", "c", "d"):
            bus.register(dst, lambda m, d=dst: got.append((sim.now, d, m.payload)))
        if batched:
            bus.send_many("a", ["b", "c", "d"], "K", payload=9, size_bytes=10)
        else:
            for dst in ("b", "c", "d"):
                bus.send("a", dst, "K", payload=9, size_bytes=10)
        sim.run()
        return got, bus.stats.sent, bus.stats.bytes_sent, dict(bus.stats.by_kind)

    assert fanout(True) == fanout(False)


def test_send_many_loss_rng_draw_order_matches_send():
    """Loss draws happen per destination in order: the survivor set is
    bit-identical to the serial send loop with the same loss seed."""
    def survivors(batched):
        sim = Simulation()
        bus = MessageBus(sim, FixedLatency(1.0), loss_rate=0.5, loss_seed=7)
        got = []
        dsts = [f"n{i}" for i in range(12)]
        for dst in dsts:
            bus.register(dst, lambda m: got.append(m.dst))
        if batched:
            bus.send_many("src", dsts, "K")
        else:
            for dst in dsts:
                bus.send("src", dst, "K")
        sim.run()
        return got, bus.stats.dropped_loss

    batched, serial = survivors(True), survivors(False)
    assert batched == serial
    assert 0 < batched[1] < 12  # the loss model actually bit


def test_send_many_returns_messages_and_observers_fire():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(1.0))
    rec = Recorder()
    bus.add_observer(rec)
    msgs = bus.send_many("a", ["b", "c"], "K", size_bytes=32)
    assert [m.dst for m in msgs] == ["b", "c"]
    assert rec.seen == [("a", "b", 32, "K"), ("a", "c", 32, "K")]


def test_send_many_empty_and_negative_size():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(1.0))
    assert bus.send_many("a", [], "K") == []
    with pytest.raises(SimulationError):
        bus.send_many("a", ["b"], "K", size_bytes=-1)


# -- negative total delay + slots (PR 9) -------------------------------------

def test_negative_extra_delay_raises():
    """A negative extra_delay larger than the underlay latency would
    schedule delivery before the send; the bus must refuse it."""
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(5.0))
    bus.send("a", "b", "K", extra_delay=-5.0)  # exactly zero is fine
    with pytest.raises(SimulationError, match="negative total delay"):
        bus.send("a", "b", "K", extra_delay=-5.01)
    with pytest.raises(SimulationError, match="negative total delay"):
        bus.send_many("a", ["b", "c"], "K", extra_delay=-6.0)


def test_negative_fault_penalty_raises():
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(5.0))
    bus.set_fault_hook(lambda src, dst, kind: -9.0)
    with pytest.raises(SimulationError, match="negative total delay"):
        bus.send("a", "b", "K")


def test_message_and_busstats_are_slots():
    """Misspelled attribute writes fail loudly instead of silently
    growing per-message instance dicts at fan-out scale."""
    from repro.sim.messages import BusStats, Message

    msg = Message(src="a", dst="b", kind="K")
    with pytest.raises(AttributeError):
        msg.playload = 1  # typo'd 'payload'
    assert not hasattr(msg, "__dict__")
    stats = BusStats()
    with pytest.raises(AttributeError):
        stats.snet = 1  # typo'd 'sent'
    assert not hasattr(stats, "__dict__")


def test_instrumented_bus_counts_via_bound_cells():
    """The fast path counts through bound label cells; the registry
    snapshot must match the per-kind stats exactly."""
    from repro import obs

    with obs.observe() as session:
        sim = Simulation()
        bus = MessageBus(sim, FixedLatency(1.0))
        bus.register("b", lambda m: None)
        bus.send("a", "b", "PING")
        bus.send_many("a", ["b", "b"], "PING", size_bytes=10)
        bus.send("a", "missing", "PONG")
        sim.run()
    snap = obs.registry_to_dict(session.registry)
    assert snap["bus_messages_sent_total"]["values"]["kind=PING"] == 3
    assert snap["bus_messages_sent_total"]["values"]["kind=PONG"] == 1
    assert snap["bus_bytes_sent_total"]["values"]["kind=PING"] == 64 + 10 + 10
    assert snap["bus_messages_delivered_total"]["values"]["kind=PING"] == 3
    assert (
        snap["bus_messages_dropped_total"]["values"]["reason=no_handler"] == 1
    )
