"""Property tests: coordinate systems and distance-matrix invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.coords import ICS, ICSConfig, validate_distance_matrix
from repro.errors import CoordinateError


def symmetric_distance_matrices(max_n=8):
    """Random symmetric non-negative matrices with zero diagonal."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=max_n))
        vals = draw(
            hnp.arrays(
                dtype=float,
                shape=(n, n),
                elements=st.floats(min_value=0.1, max_value=100.0),
            )
        )
        mat = (vals + vals.T) / 2.0
        np.fill_diagonal(mat, 0.0)
        return mat

    return build()


@given(symmetric_distance_matrices())
def test_ics_alpha_nonnegative_and_estimates_symmetric(mat):
    ics = ICS(mat, ICSConfig(variance_threshold=0.9))
    assert ics.alpha >= 0.0
    for i in range(mat.shape[0]):
        for j in range(mat.shape[0]):
            assert ics.estimate(i, j) >= 0.0
            assert np.isclose(ics.estimate(i, j), ics.estimate(j, i))
        assert np.isclose(ics.estimate(i, i), 0.0)


@given(symmetric_distance_matrices(), st.floats(min_value=0.1, max_value=10.0))
def test_ics_estimates_scale_linearly(mat, scale):
    """Scaling all measured delays by c scales all estimates by c.

    Tested at full dimension: truncated PCA is only basis-unique when the
    cut does not split a degenerate eigenvalue group, so partial-dimension
    embeddings of scaled matrices may legitimately differ.
    """
    n = mat.shape[0]
    base = ICS(mat, ICSConfig(dim=n))
    scaled = ICS(mat * scale, ICSConfig(dim=n))
    for i in range(mat.shape[0]):
        for j in range(i + 1, mat.shape[0]):
            assert np.isclose(
                scaled.estimate(i, j), base.estimate(i, j) * scale,
                rtol=1e-6, atol=1e-9,
            )


def euclidean_distance_matrices(max_n=8):
    """Distance matrices of random point clouds (1–3 dim positions).

    The full-dim-vs-dim-1 residual property below is only claimed for
    geometrically realisable inputs: for arbitrary symmetric matrices
    with strongly non-Euclidean spectra (a negative Gram eigenvalue the
    size of the positive ones, e.g. the 4-point "star" D with d01=0.5,
    d02=3.75), adding a principal direction can genuinely worsen the
    single-alpha least-squares fit — that is a property of PCA-on-D, not
    a bug.  Beacon RTT matrices, which ICS models, are near-Euclidean.
    """

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=max_n))
        pdim = draw(st.integers(min_value=1, max_value=3))
        pts = draw(
            hnp.arrays(
                dtype=float,
                shape=(n, pdim),
                elements=st.floats(min_value=0.0, max_value=100.0),
            )
        )
        diff = pts[:, None, :] - pts[None, :, :]
        mat = np.sqrt((diff**2).sum(axis=-1))
        assume(float(mat.max()) > 1e-6)  # not all points coincident
        return mat

    return build()


@given(euclidean_distance_matrices())
def test_ics_full_dim_never_worse_than_dim1(mat):
    """More PCA dimensions cannot increase the fitting residual (on
    geometrically realisable distance matrices)."""
    n = mat.shape[0]
    iu = np.triu_indices(n, 1)

    def residual(ics):
        pred = np.array(
            [[ics.estimate(i, j) for j in range(n)] for i in range(n)]
        )
        return float(np.sum((pred[iu] - mat[iu]) ** 2))

    low = ICS(mat, ICSConfig(dim=1))
    full = ICS(mat, ICSConfig(dim=n))
    assert residual(full) <= residual(low) + 1e-6


@given(
    hnp.arrays(
        dtype=float, shape=(4, 4),
        elements=st.floats(min_value=-5, max_value=5),
    )
)
def test_validate_distance_matrix_rejects_negative(mat):
    assume((mat < 0).any())
    try:
        validate_distance_matrix(mat)
    except CoordinateError:
        return
    raise AssertionError("negative matrix accepted")
