"""Streaming delay kernel: equivalence with the matrix backend.

The contract under test is *bit-identical values across every delay
path*: ``LatencyModel.one_way_delay`` (scalar), ``latency_matrix``
(all-pairs), ``StreamingDelayKernel.delay_row``/``delay_block``
(streamed), and the two ``Underlay`` backends — plus the O(n)-memory
claim at 10^5 hosts (``-m scale``).
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import pathlib
import resource

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.underlay import (
    STREAM_AUTO_HOST_THRESHOLD,
    LatencyConfig,
    StreamingDelayKernel,
    Underlay,
    UnderlayConfig,
    pair_jitter,
)


@functools.lru_cache(maxsize=8)
def _underlay(n_hosts: int, seed: int, backend: str = "auto") -> Underlay:
    return Underlay.generate(
        UnderlayConfig(n_hosts=n_hosts, seed=seed, delay_backend=backend)
    )


# -- the jitter kernel itself -------------------------------------------------

def test_pair_jitter_symmetric_and_deterministic():
    a = np.arange(100, dtype=np.uint64)
    b = np.arange(100, 200, dtype=np.uint64)
    j1 = pair_jitter(a, b, jitter_seed=7, jitter_std_frac=0.08)
    j2 = pair_jitter(b, a, jitter_seed=7, jitter_std_frac=0.08)
    assert np.array_equal(j1, j2)  # sorted-pair hash: direction-free
    assert np.array_equal(
        j1, pair_jitter(a, b, jitter_seed=7, jitter_std_frac=0.08)
    )
    # a different seed is a different multiplier field
    j3 = pair_jitter(a, b, jitter_seed=8, jitter_std_frac=0.08)
    assert not np.array_equal(j1, j3)


def test_pair_jitter_distribution_shape():
    n = 20_000
    a = np.zeros(n, dtype=np.uint64)
    b = np.arange(1, n + 1, dtype=np.uint64)
    j = pair_jitter(a, b, jitter_seed=3, jitter_std_frac=0.08)
    assert (j >= 0.5).all() and (j <= 2.0).all()
    assert abs(j.mean() - 1.0) < 0.01
    assert abs(j.std() - 0.08) < 0.01


def test_pair_jitter_zero_std_is_ones():
    a = np.arange(10, dtype=np.uint64)
    j = pair_jitter(a, a + 1, jitter_seed=7, jitter_std_frac=0.0)
    assert np.array_equal(j, np.ones(10))


# -- scalar == matrix == row: the PR 9 consistency fix ------------------------

@pytest.mark.parametrize("seed", [0, 11, 42])
def test_scalar_matrix_row_agree_bitwise(seed):
    """The seed bug: the scalar path drew per-pair RNG jitter while the
    matrix path hashed counters, so ``one_way_delay`` disagreed with the
    matrix entry.  All paths now share :func:`pair_jitter` and must
    agree *bitwise* for every sampled pair."""
    u = _underlay(40, seed, "matrix")
    mat = u.latency_matrix
    kernel = u.latency.delay_kernel(u.hosts)
    rng = np.random.default_rng(seed)
    n = len(u.hosts)
    for _ in range(50):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        scalar = u.latency.one_way_delay(u.hosts[i], u.hosts[j])
        assert mat[i, j] == scalar
        assert kernel.delay_row(int(i), [int(j)])[0] == scalar
        assert kernel.delay_scalar(int(i), int(j)) == scalar


def test_matrix_is_symmetric_with_zero_diagonal():
    u = _underlay(40, 5, "matrix")
    mat = u.latency_matrix
    assert np.array_equal(mat, mat.T)
    assert np.array_equal(np.diag(mat), np.zeros(len(u.hosts)))


# -- property: streamed blocks == matrix entries ------------------------------

@settings(max_examples=20, deadline=None)
@given(
    n_hosts=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=7),
    data=st.data(),
)
def test_stream_block_matches_matrix_entrywise(n_hosts, seed, data):
    u = _underlay(n_hosts, seed, "matrix")
    mat = u.latency_matrix
    kernel = u.latency.delay_kernel(u.hosts)
    idx = st.integers(min_value=0, max_value=len(u.hosts) - 1)
    rows = data.draw(st.lists(idx, min_size=1, max_size=6))
    cols = data.draw(st.lists(idx, min_size=1, max_size=6))
    block = kernel.delay_block(rows, cols)
    assert np.array_equal(block, mat[np.ix_(rows, cols)])
    row = data.draw(idx)
    assert np.array_equal(kernel.delay_row(row, cols), mat[row, cols])


# -- Underlay backend toggle --------------------------------------------------

def test_stream_and_matrix_backends_value_identical():
    m = _underlay(60, 9, "matrix")
    s = _underlay(60, 9, "stream")
    ids = m.host_ids()
    for src in ids[:5]:
        assert np.array_equal(
            m.one_way_delay_row(src, ids), s.one_way_delay_row(src, ids)
        )
        for dst in ids[::7]:
            assert m.one_way_delay(src, dst) == s.one_way_delay(src, dst)


def test_auto_backend_threshold():
    assert _underlay(30, 1).delay_backend == "matrix"
    small = UnderlayConfig(n_hosts=30, seed=1)
    assert Underlay.generate(small).delay_backend == "matrix"
    # don't generate >2048 hosts just for the toggle: construct directly
    u = _underlay(30, 1)
    assert STREAM_AUTO_HOST_THRESHOLD == 2048
    forced = Underlay(
        u.topology, u.hosts, delay_backend="stream"
    )
    assert forced.delay_backend == "stream"
    with pytest.raises(ConfigurationError):
        Underlay(u.topology, u.hosts, delay_backend="banana")
    with pytest.raises(ConfigurationError):
        UnderlayConfig(delay_backend="banana")


def test_stream_scalar_memo_hits():
    u = _underlay(50, 2, "stream")
    u.one_way_delay(u.host_ids()[0], u.host_ids()[1])
    info0 = u.delay_kernel.memo_info()
    for _ in range(10):
        u.one_way_delay(u.host_ids()[0], u.host_ids()[1])
        u.one_way_delay(u.host_ids()[1], u.host_ids()[0])  # symmetric key
    info1 = u.delay_kernel.memo_info()
    assert info1.misses == info0.misses  # all served from the memo
    assert info1.hits >= info0.hits + 20
    u.delay_kernel.memo_clear()
    assert u.delay_kernel.memo_info().hits == 0


def test_stream_mode_matrix_available_midsize_refused_at_scale():
    s = _underlay(60, 9, "stream")
    m = _underlay(60, 9, "matrix")
    # mid-size stream underlays may still materialise the matrix...
    assert np.array_equal(s.latency_matrix, m.latency_matrix)
    # ...but past the hard limit the property must refuse, not swap 80 GB
    big = _underlay(30, 1, "stream")
    big.delay_backend = "stream"
    big.hosts = big.hosts * 700  # 21000 > hard limit; only len() is read
    big._latency_matrix = None
    with pytest.raises(ConfigurationError, match="refusing"):
        big.latency_matrix


def test_kernel_memory_is_linear_in_hosts():
    u = _underlay(50, 2, "stream")
    per_host = u.delay_kernel.memory_bytes() / len(u.hosts)
    # uint64 + int64 + float64 + 2x float64 = 40 bytes of columns per host
    assert per_host == 40.0


def test_kernel_rejects_mismatched_columns():
    u = _underlay(30, 1)
    k = u.delay_kernel
    with pytest.raises(ConfigurationError):
        StreamingDelayKernel(
            k.host_ids, k.asns[:-1], k.access_ms, k.positions,
            k.as_delay, k.config,
        )


# -- 10^5-host smoke: O(n) memory, value-consistent rows (-m scale) -----------

def _scale_probe(n_hosts: int) -> dict:
    """Forked-child body: build a stream underlay at ``n_hosts`` and
    serve delay rows; peak RSS stays O(n) (the matrix would be
    ~{n^2 * 8 / 2**30:.0f} GiB)."""
    u = Underlay.generate(UnderlayConfig(n_hosts=n_hosts, seed=17))
    assert u.delay_backend == "stream"
    kernel = u.delay_kernel
    cols = list(range(0, n_hosts, max(1, n_hosts // 4096)))[:4096]
    rows = [kernel.delay_row(r, cols) for r in (0, n_hosts // 2, n_hosts - 1)]
    # row entries agree with the memoised scalar path
    scalar_ok = all(
        rows[0][c] == kernel.delay_scalar(0, cols[c]) for c in (1, 100, 1000)
    )
    return {
        "n_hosts": n_hosts,
        "scalar_ok": bool(scalar_ok),
        "row_finite": bool(all(np.isfinite(r).all() for r in rows)),
        "kernel_mb": kernel.memory_bytes() / 2**20,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    }


@pytest.mark.scale
def test_delay_rows_at_1e5_hosts_bounded_rss():
    ctx = multiprocessing.get_context("fork")
    rx, tx = ctx.Pipe(duplex=False)

    def run() -> None:
        tx.send(_scale_probe(100_000))
        tx.close()

    proc = ctx.Process(target=run)
    proc.start()
    result = rx.recv()
    proc.join()
    assert proc.exitcode == 0
    assert result["scalar_ok"] and result["row_finite"]
    assert result["kernel_mb"] < 8.0  # 40 B/host of SoA columns
    # the full matrix would be ~75 GiB; the stream path must stay O(n)
    assert result["peak_rss_mb"] < 2048, result
