"""Unit tests for the resource-aware hybrid overlay."""

import pytest

from repro.errors import OverlayError
from repro.overlay.superpeer import ElectionPolicy, SuperPeerOverlay


def test_capacity_election_picks_strongest(small_underlay):
    sp = SuperPeerOverlay(
        small_underlay, policy=ElectionPolicy.CAPACITY,
        superpeer_fraction=0.2, rng=1,
    )
    elected = sp.elect()
    scores = {
        h.host_id: h.resources.capacity_score() for h in small_underlay.hosts
    }
    cutoff = sorted(scores.values(), reverse=True)[len(elected) - 1]
    assert all(scores[e] >= cutoff for e in elected)


def test_skyeye_election_close_to_omniscient(small_underlay):
    sp1 = SuperPeerOverlay(small_underlay, superpeer_fraction=0.2, rng=1)
    direct = set(sp1.elect(use_skyeye=False))
    sp2 = SuperPeerOverlay(small_underlay, superpeer_fraction=0.2, rng=1)
    via_skyeye = set(sp2.elect(use_skyeye=True))
    assert direct == via_skyeye  # exact aggregation -> identical result


def test_random_election_differs_from_capacity(small_underlay):
    cap = SuperPeerOverlay(
        small_underlay, policy=ElectionPolicy.CAPACITY, superpeer_fraction=0.2,
        rng=2,
    ).elect()
    rand = SuperPeerOverlay(
        small_underlay, policy=ElectionPolicy.RANDOM, superpeer_fraction=0.2,
        rng=2,
    ).elect()
    assert set(cap) != set(rand)


def test_attach_respects_capacity_limit(small_underlay):
    sp = SuperPeerOverlay(
        small_underlay, superpeer_fraction=0.2,
        max_leaves_per_superpeer=5, rng=3,
    )
    sp.elect()
    sp.attach_leaves()
    load: dict[int, int] = {}
    for leaf, s in sp.leaf_assignment.items():
        load[s] = load.get(s, 0) + 1
        assert leaf not in sp.superpeers
    assert max(load.values()) <= 5


def test_attach_before_elect_rejected(small_underlay):
    sp = SuperPeerOverlay(small_underlay, rng=1)
    with pytest.raises(OverlayError):
        sp.attach_leaves()


def test_capacity_exhaustion_raises(small_underlay):
    sp = SuperPeerOverlay(
        small_underlay, superpeer_fraction=0.05,
        max_leaves_per_superpeer=2, rng=1,
    )
    sp.elect()
    with pytest.raises(OverlayError):
        sp.attach_leaves()


def test_leaves_attach_to_nearby_superpeer(small_underlay):
    u = small_underlay
    sp = SuperPeerOverlay(u, superpeer_fraction=0.25, rng=4)
    sp.elect()
    sp.attach_leaves()
    # each leaf's assigned SP should be among its 5 closest SPs by RTT
    for leaf, assigned in list(sp.leaf_assignment.items())[:10]:
        ranked = sorted(
            sp.superpeers, key=lambda s: u.one_way_delay(leaf, s)
        )
        assert assigned in ranked[:5]


def test_report_metrics(small_underlay):
    sp = SuperPeerOverlay(small_underlay, superpeer_fraction=0.2, rng=5)
    sp.elect()
    sp.attach_leaves()
    rep = sp.report(n_search_samples=100)
    assert rep.n_superpeers == len(sp.superpeers)
    assert rep.mean_search_latency_ms > 0
    assert rep.mean_superpeer_session_h > 0
    assert rep.max_leaf_load <= sp.max_leaves


def test_capacity_beats_random_on_stability(small_underlay):
    reports = {}
    for pol in (ElectionPolicy.RANDOM, ElectionPolicy.CAPACITY):
        sp = SuperPeerOverlay(
            small_underlay, policy=pol, superpeer_fraction=0.2, rng=6
        )
        sp.elect()
        sp.attach_leaves()
        reports[pol] = sp.report()
    assert (
        reports[ElectionPolicy.CAPACITY].mean_superpeer_up_kbps
        > reports[ElectionPolicy.RANDOM].mean_superpeer_up_kbps
    )
    assert (
        reports[ElectionPolicy.CAPACITY].mean_superpeer_session_h
        > reports[ElectionPolicy.RANDOM].mean_superpeer_session_h
    )


def test_invalid_fraction_rejected(small_underlay):
    with pytest.raises(OverlayError):
        SuperPeerOverlay(small_underlay, superpeer_fraction=0.0)
