"""Unit/integration tests for the Chord ring."""

import pytest

from repro.errors import OverlayError
from repro.overlay.chord import (
    ChordConfig,
    ChordRing,
    M_BITS,
    RING,
    chord_id,
    in_interval,
)
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


class TestRingMath:
    def test_chord_id_range_and_stability(self):
        k = chord_id("hello")
        assert 0 <= k < RING
        assert chord_id("hello") == k
        assert chord_id("world") != k

    def test_in_interval_plain(self):
        assert in_interval(5, 2, 8)
        assert in_interval(8, 2, 8)     # half-open: includes b
        assert not in_interval(2, 2, 8)  # excludes a
        assert not in_interval(9, 2, 8)

    def test_in_interval_wrapping(self):
        assert in_interval(1, RING - 5, 3)
        assert in_interval(RING - 1, RING - 5, 3)
        assert not in_interval(10, RING - 5, 3)

    def test_config_validation(self):
        with pytest.raises(OverlayError):
            ChordConfig(successors=0)
        with pytest.raises(OverlayError):
            ChordConfig(fingers=M_BITS + 1)
        with pytest.raises(OverlayError):
            ChordConfig(prs_window=0.5)


@pytest.fixture(scope="module")
def ring():
    u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=12))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    r = ChordRing(u, sim, bus, rng=2)
    r.build()
    return u, sim, r


class TestChordStructure:
    def test_distinct_ring_ids(self, ring):
        _u, _sim, r = ring
        rids = [n.ring_id for n in r.nodes.values()]
        assert len(set(rids)) == len(rids)

    def test_successors_are_clockwise(self, ring):
        _u, _sim, r = ring
        order = r._ring_order
        n = len(order)
        for i, hid in enumerate(order):
            node = r.nodes[hid]
            expected = [order[(i + k + 1) % n] for k in range(len(node.successors))]
            assert node.successors == expected

    def test_fingers_point_forward(self, ring):
        _u, _sim, r = ring
        for node in r.nodes.values():
            for rid, hid in node.fingers:
                assert rid == r.nodes[hid].ring_id
                assert hid != node.host_id

    def test_ownership_partitions_the_ring(self, ring):
        _u, _sim, r = ring
        for probe in (0, RING // 3, RING // 2, RING - 1):
            owners = [n for n in r.nodes.values() if n.owns(probe)]
            assert len(owners) == 1
            assert owners[0].host_id == r._owner_of(probe)


class TestChordLookups:
    def test_all_lookups_reach_correct_owner(self, ring):
        u, sim, r = ring
        ids = u.host_ids()
        recs = [
            (r.lookup(ids[i % len(ids)], f"content-{i}"), f"content-{i}")
            for i in range(120)
        ]
        sim.run()
        for rec, content in recs:
            assert rec.done
            assert rec.owner == r.correct_owner(content)

    def test_hops_logarithmic(self, ring):
        u, sim, r = ring
        stats = r.lookup_stats()
        import math

        assert stats["mean_hops"] <= 2 * math.log2(len(r.nodes))

    def test_local_hit_zero_hops(self, ring):
        u, sim, r = ring
        # find (origin, content) where origin owns the key
        for i in range(500):
            content = f"self-{i}"
            owner = r.correct_owner(content)
            rec = r.lookup(owner, content)
            assert rec.done and rec.hops == 0 and rec.owner == owner
            break

    def test_needs_two_nodes(self):
        u = Underlay.generate(UnderlayConfig(n_hosts=5, seed=1))
        sim = Simulation()
        bus, _ = u.message_bus(sim, with_accounting=False)
        r = ChordRing(u, sim, bus)
        with pytest.raises(OverlayError):
            r.build(hosts=u.hosts[:1])


def test_pns_fingers_cut_latency_without_hop_inflation():
    u = Underlay.generate(UnderlayConfig(n_hosts=80, seed=13))

    def run(cfg):
        sim = Simulation()
        bus, _ = u.message_bus(sim, with_accounting=False)
        r = ChordRing(u, sim, bus, config=cfg, rng=3)
        r.build()
        ids = u.host_ids()
        recs = [
            (r.lookup(ids[i % len(ids)], f"k{i}"), f"k{i}") for i in range(150)
        ]
        sim.run()
        assert all(
            rec.done and rec.owner == r.correct_owner(c) for rec, c in recs
        )
        return r.lookup_stats()

    plain = run(ChordConfig())
    pns = run(ChordConfig(proximity_fingers=True))
    assert pns["mean_latency_ms"] < 0.9 * plain["mean_latency_ms"]
    assert pns["mean_hops"] <= plain["mean_hops"] + 0.5
