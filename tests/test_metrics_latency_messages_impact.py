"""Unit tests for latency metrics, message stats and the impact mapping."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    GNUTELLA_KINDS,
    PAPER_TABLE2,
    agreement_rate,
    compare_with_paper,
    delay_percentiles,
    gnutella_table_row,
    impact_symbol,
    neighbor_delay_stats,
    overhead_ratio,
    overlay_path_stretch,
    reduction_percent,
    table_reductions,
)


class TestLatencyMetrics:
    def test_delay_percentiles(self):
        d = delay_percentiles(list(range(1, 101)))
        assert d["p50"] == pytest.approx(50.5)
        assert d["p99"] > d["p90"] > d["p50"]
        with pytest.raises(ReproError):
            delay_percentiles([])

    def test_fractional_percentiles_get_distinct_keys(self):
        # regression: f"p{int(p)}" collapsed 99 and 99.9 onto one "p99"
        # key, silently dropping whichever was computed first
        d = delay_percentiles(list(range(1, 1001)), (50, 99, 99.9))
        assert set(d) == {"p50", "p99", "p99.9"}
        assert d["p99.9"] > d["p99"]
        with pytest.raises(ReproError):
            delay_percentiles([1.0, 2.0], (99, 99.0))

    def test_neighbor_delay_stats(self):
        g = nx.path_graph(4)
        stats = neighbor_delay_stats(g, lambda a, b: abs(a - b) * 10.0)
        assert stats["mean"] == pytest.approx(10.0)

    def test_stretch_at_least_one(self):
        g = nx.complete_graph(6)
        delay = lambda a, b: 1.0 + abs(a - b)
        pairs = [(0, 5), (1, 4), (2, 3)]
        s = overlay_path_stretch(g, delay, pairs)
        assert s >= 1.0

    def test_stretch_penalises_sparse_overlay(self):
        chain = nx.path_graph(6)
        full = nx.complete_graph(6)
        delay = lambda a, b: 1.0 if a != b else 0.0
        pairs = [(0, 5)]
        assert overlay_path_stretch(chain, delay, pairs) > overlay_path_stretch(
            full, delay, pairs
        )

    def test_stretch_no_paths_raises(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        with pytest.raises(ReproError):
            overlay_path_stretch(g, lambda a, b: 1.0, [(0, 1)])


class TestMessageStats:
    def test_table_row_extracts_kinds(self):
        counts = {"PING": 5, "PONG": 50, "QUERY": 7, "QUERYHIT": 2, "OTHER": 9}
        row = gnutella_table_row(counts)
        assert set(row) == set(GNUTELLA_KINDS)
        assert row["PONG"] == 50

    def test_reduction_percent(self):
        assert reduction_percent(100, 60) == pytest.approx(40.0)
        with pytest.raises(ReproError):
            reduction_percent(0, 1)

    def test_table_reductions_paper_values(self):
        paper_unbiased = {"PING": 7.6, "PONG": 75.5, "QUERY": 6.3, "QUERYHIT": 3.5}
        paper_biased_1000 = {"PING": 4.0, "PONG": 39.1, "QUERY": 2.3, "QUERYHIT": 1.9}
        red = table_reductions(paper_unbiased, paper_biased_1000)
        assert red["PING"] == pytest.approx(47.4, abs=0.1)
        assert red["QUERY"] == pytest.approx(63.5, abs=0.1)

    def test_overhead_ratio(self):
        assert overhead_ratio(50, 100) == 0.5
        with pytest.raises(ReproError):
            overhead_ratio(1, 0)


class TestImpact:
    def test_symbol_thresholds(self):
        assert impact_symbol(0.5) == "++"
        assert impact_symbol(0.1) == "+"
        assert impact_symbol(0.01) == "o"
        assert impact_symbol(-0.4) == "o"

    def test_symbol_custom_thresholds(self):
        assert impact_symbol(0.1, big=0.08, small=0.01) == "++"
        with pytest.raises(ReproError):
            impact_symbol(0.1, big=0.01, small=0.08)

    def test_paper_table_shape(self):
        assert set(PAPER_TABLE2) == {
            "download_time", "delay", "isp_oam", "isp_costs",
            "new_applications", "resilience",
        }
        for row in PAPER_TABLE2.values():
            assert set(row) == {
                "isp_location", "latency", "geolocation", "peer_resources"
            }
            assert set(row.values()) <= {"++", "+", "o"}

    def test_compare_with_paper(self):
        measured = {"download_time": {"isp_location": 0.5, "latency": 0.0}}
        cells = compare_with_paper(measured)
        assert len(cells) == 2
        by_col = {c.info_type: c for c in cells}
        assert by_col["isp_location"].matches        # ++ vs ++
        assert by_col["latency"].matches             # o vs o
        assert agreement_rate(cells) == 1.0

    def test_within_one_step(self):
        cells = compare_with_paper({"delay": {"latency": 0.1}})  # + vs ++
        assert not cells[0].matches
        assert cells[0].within_one_step

    def test_unknown_row_col_rejected(self):
        with pytest.raises(ReproError):
            compare_with_paper({"bogus": {"latency": 0.1}})
        with pytest.raises(ReproError):
            compare_with_paper({"delay": {"bogus": 0.1}})
        with pytest.raises(ReproError):
            agreement_rate([])
