"""ICS tests — including exact reproduction of the paper's Examples 4–5.

The worked numbers embedded in the survey's Figure 4 excerpt (from Lim et
al. [20]) are deterministic linear algebra; we assert them to the
precision the paper prints.
"""

import numpy as np
import pytest

from repro.coords import (
    ICS,
    ICSConfig,
    PAPER_EXAMPLE_HOST_A,
    PAPER_EXAMPLE_HOST_B,
    PAPER_EXAMPLE_MATRIX,
)
from repro.errors import ConfigurationError, CoordinateError


@pytest.fixture(scope="module")
def ics2():
    return ICS(PAPER_EXAMPLE_MATRIX, ICSConfig(dim=2))


class TestPaperExample4:
    def test_alpha(self, ics2):
        assert ics2.alpha == pytest.approx(0.6, abs=1e-9)

    def test_transformation_matrix(self, ics2):
        expected = np.array(
            [[-0.3, -0.3], [-0.3, -0.3], [-0.3, 0.3], [-0.3, 0.3]]
        )
        assert np.allclose(ics2.transform, expected, atol=1e-9)

    def test_beacon_coordinates(self, ics2):
        c = ics2.beacon_coords
        assert np.allclose(c[0], [-2.1, 1.5], atol=1e-9)
        assert np.allclose(c[1], [-2.1, 1.5], atol=1e-9)
        assert np.allclose(c[2], [-2.1, -1.5], atol=1e-9)
        assert np.allclose(c[3], [-2.1, -1.5], atol=1e-9)

    def test_inter_as_distance_exactly_three(self, ics2):
        assert ics2.estimate(0, 2) == pytest.approx(3.0, abs=1e-9)

    def test_n4_values(self):
        ics4 = ICS(PAPER_EXAMPLE_MATRIX, ICSConfig(dim=4))
        assert ics4.alpha == pytest.approx(0.5927, abs=5e-5)
        assert ics4.estimate(0, 1) == pytest.approx(0.8383, abs=5e-5)
        assert ics4.estimate(0, 2) == pytest.approx(3.0224, abs=5e-5)
        assert ics4.estimate(2, 3) == pytest.approx(0.8383, abs=5e-5)


class TestPaperExample5:
    def test_host_a_coordinate(self, ics2):
        xa = ics2.host_coordinate(PAPER_EXAMPLE_HOST_A)
        assert np.allclose(xa, [-3.0, 1.8], atol=1e-9)

    def test_host_a_distances(self, ics2):
        xa = ics2.host_coordinate(PAPER_EXAMPLE_HOST_A)
        c = ics2.beacon_coords
        # the paper truncates 0.9487 to "0.94"
        assert ICS.distance(c[0], xa) == pytest.approx(0.9487, abs=5e-4)
        assert ICS.distance(c[1], xa) == pytest.approx(0.9487, abs=5e-4)
        assert ICS.distance(c[2], xa) == pytest.approx(3.42, abs=5e-3)
        assert ICS.distance(c[3], xa) == pytest.approx(3.42, abs=5e-3)

    def test_host_b_coordinate_and_distances(self, ics2):
        xb = ics2.host_coordinate(PAPER_EXAMPLE_HOST_B)
        assert xb[0] == pytest.approx(-12.0, abs=1e-9)
        assert xb[1] == pytest.approx(0.0, abs=1e-9)
        for i in range(4):
            assert ICS.distance(ics2.beacon_coords[i], xb) == pytest.approx(
                10.01, abs=5e-3
            )


class TestICSGeneral:
    def test_dimension_by_variance_threshold(self):
        ics = ICS(PAPER_EXAMPLE_MATRIX, ICSConfig(variance_threshold=0.95))
        # sigma = (7, 5, 1, 1): two components carry 74/76 = 97.4% > 95%
        assert ics.dim == 2

    def test_variance_cumsum_monotone(self, ics2):
        cv = ics2.cumulative_variation
        assert np.all(np.diff(cv) >= -1e-12)
        assert cv[-1] == pytest.approx(1.0)

    def test_vectorised_host_coordinates(self, ics2):
        both = np.vstack([PAPER_EXAMPLE_HOST_A, PAPER_EXAMPLE_HOST_B])
        coords = ics2.host_coordinates(both)
        assert np.allclose(coords[0], ics2.host_coordinate(PAPER_EXAMPLE_HOST_A))
        assert np.allclose(coords[1], ics2.host_coordinate(PAPER_EXAMPLE_HOST_B))

    def test_asymmetric_matrix_rejected(self):
        bad = PAPER_EXAMPLE_MATRIX.copy()
        bad[0, 1] = 9.0
        with pytest.raises(CoordinateError):
            ICS(bad)

    def test_nonsquare_rejected(self):
        with pytest.raises(CoordinateError):
            ICS(np.zeros((3, 4)))

    def test_negative_distances_rejected(self):
        bad = PAPER_EXAMPLE_MATRIX.copy()
        bad[0, 1] = bad[1, 0] = -1.0
        with pytest.raises(CoordinateError):
            ICS(bad)

    def test_wrong_measurement_length_rejected(self, ics2):
        with pytest.raises(CoordinateError):
            ics2.host_coordinate([1.0, 2.0])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ICSConfig(dim=0)
        with pytest.raises(ConfigurationError):
            ICSConfig(variance_threshold=0.0)

    def test_embedding_on_generated_underlay(self, small_underlay):
        rtt = small_underlay.rtt_matrix()
        nb = 12
        ics = ICS(rtt[:nb, :nb], ICSConfig(variance_threshold=0.999))
        coords = ics.host_coordinates(rtt[:, :nb])
        diff = coords[:, None, :] - coords[None, :, :]
        pred = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        iu = np.triu_indices(rtt.shape[0], 1)
        rel = np.abs(pred[iu] - rtt[iu]) / rtt[iu]
        # ICS is a linear landmark method: usable but coarser than Vivaldi
        assert np.median(rel) < 0.55
