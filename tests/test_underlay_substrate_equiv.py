"""Equivalence tests: the CSR/accumulating substrate kernels must be
bit-for-bit identical to the seed implementation.

The reference implementation kept here is a faithful copy of the original
hot path: a sorted-adjacency FIFO BFS over ``(asn, phase)`` states per
source, per-pair path reconstruction through the predecessor map, and an
O(n^2) Python loop that re-walks every path to accumulate the AS delay
matrix.  Every matrix the fast path produces — ``hops()``, ``path()``,
``hop_matrix()``, and ``LatencyModel``'s AS delay and host latency
matrices — must match it exactly (same values, same dtypes, same
tie-breaking by expansion order), on several seeded topologies.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.underlay import (
    ASRouting,
    HostFactory,
    LatencyConfig,
    LatencyModel,
    TopologyConfig,
    generate_topology,
    pairwise_distances,
)

SEEDS = (0, 3, 42)

_UP, _PEERED, _DOWN = 0, 1, 2


class ReferenceRouting:
    """The seed implementation, verbatim in structure: per-source FIFO
    BFS with ``sorted()`` adjacency expansion and dict-keyed states."""

    def __init__(self, topology) -> None:
        self.topology = topology
        self._n = topology.n_ases
        self._hops_cache: dict[int, np.ndarray] = {}
        self._pred_cache: dict = {}
        self._best_state: dict = {}

    def _expand(self, asn, phase):
        asys = self.topology.asys(asn)
        out = []
        if phase == _UP:
            for p in sorted(asys.providers):
                out.append((p, _UP))
            for q in sorted(asys.peers):
                out.append((q, _PEERED))
            for c in sorted(asys.customers):
                out.append((c, _DOWN))
        elif phase in (_PEERED, _DOWN):
            for c in sorted(asys.customers):
                out.append((c, _DOWN))
        return out

    def _bfs_from(self, src):
        if src in self._hops_cache:
            return
        hops = np.full(self._n, -1, dtype=np.int32)
        hops[src] = 0
        pred = {}
        best = {src: (src, _UP)}
        visited = {(src, _UP)}
        frontier = deque([(src, _UP, 0)])
        while frontier:
            asn, phase, d = frontier.popleft()
            for nxt_asn, nxt_phase in self._expand(asn, phase):
                state = (nxt_asn, nxt_phase)
                if state in visited:
                    continue
                visited.add(state)
                pred[state] = (asn, phase)
                if hops[nxt_asn] < 0:
                    hops[nxt_asn] = d + 1
                    best[nxt_asn] = state
                frontier.append((nxt_asn, nxt_phase, d + 1))
        self._hops_cache[src] = hops
        self._pred_cache[src] = pred
        self._best_state[src] = best

    def hops(self, src, dst):
        self._bfs_from(src)
        return int(self._hops_cache[src][dst])

    def path(self, src, dst):
        self._bfs_from(src)
        if src == dst:
            return [src]
        best = self._best_state[src][dst]
        pred = self._pred_cache[src]
        rev = []
        state = best
        while True:
            rev.append(state[0])
            if state == (src, _UP):
                break
            state = pred[state]
        rev.reverse()
        return rev

    def hop_matrix(self):
        mat = np.empty((self._n, self._n), dtype=np.int32)
        for src in range(self._n):
            self._bfs_from(src)
            mat[src] = self._hops_cache[src]
        return mat


def reference_as_delay(topology, routing, config):
    """The seed ``LatencyModel._build_as_delay_matrix``: per-pair path
    reconstruction plus a scalar accumulation loop."""
    n = topology.n_ases
    geo = pairwise_distances(topology.positions_array())
    mat = np.zeros((n, n), dtype=float)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                mat[src, dst] = config.intra_as_ms
                continue
            path = routing.path(src, dst)
            prop = 0.0
            for a, b in zip(path, path[1:]):
                prop += geo[a, b] * config.propagation_ms_per_km
                prop += config.per_link_router_ms
            prop += config.intra_as_ms * len(path)
            mat[src, dst] = prop
    return 0.5 * (mat + mat.T)


@pytest.fixture(scope="module", params=SEEDS)
def pair(request):
    topo = generate_topology(TopologyConfig(seed=request.param))
    return topo, ASRouting(topo), ReferenceRouting(topo)


def test_hop_matrix_bit_identical(pair):
    _topo, fast, ref = pair
    fast_mat = fast.hop_matrix()
    ref_mat = ref.hop_matrix()
    assert fast_mat.dtype == ref_mat.dtype
    assert np.array_equal(fast_mat, ref_mat)


def test_every_path_identical(pair):
    topo, fast, ref = pair
    n = topo.n_ases
    for src in range(n):
        for dst in range(n):
            assert fast.path(src, dst) == ref.path(src, dst), (src, dst)


def test_hops_match_paths(pair):
    topo, fast, ref = pair
    n = topo.n_ases
    for src in range(0, n, 3):
        for dst in range(0, n, 2):
            assert fast.hops(src, dst) == ref.hops(src, dst)


def test_as_delay_matrix_bit_identical(pair):
    topo, fast, ref = pair
    cfg = LatencyConfig()
    model = LatencyModel(topo, fast, cfg)
    expected = reference_as_delay(topo, ref, cfg)
    got = model.as_delay
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected), np.abs(got - expected).max()


def test_as_delay_nondefault_config_bit_identical(pair):
    topo, fast, ref = pair
    cfg = LatencyConfig(
        propagation_ms_per_km=0.0123, per_link_router_ms=0.7, intra_as_ms=2.25
    )
    model = LatencyModel(topo, fast, cfg)
    expected = reference_as_delay(topo, ref, cfg)
    assert np.array_equal(model.as_delay, expected)


def test_host_latency_matrix_bit_identical(pair):
    topo, fast, ref = pair
    cfg = LatencyConfig()
    hosts = HostFactory(topo, rng=5).create_hosts(60)
    got = LatencyModel(topo, fast, cfg).latency_matrix(hosts)
    # the host matrix is the AS delay matrix plus vectorised host terms;
    # rebuilding it on top of the reference AS matrix must agree exactly
    ref_model = LatencyModel(topo, fast, cfg)
    ref_model.warm_as_delay(reference_as_delay(topo, ref, cfg))
    expected = ref_model.latency_matrix(hosts)
    assert np.array_equal(got, expected)


def test_lazy_precompute_invalidate_roundtrip(pair):
    topo, fast, _ref = pair
    model = LatencyModel(topo, fast, LatencyConfig())
    assert model._as_delay is None  # lazy until first use
    first = model.precompute().as_delay
    model.invalidate()
    assert model._as_delay is None
    second = model.precompute().as_delay
    assert np.array_equal(first, second)


def test_routing_invalidate_rebuilds_identically(pair):
    topo, fast, _ref = pair
    before = fast.hop_matrix().copy()
    p_before = fast.path(0, topo.n_ases - 1)
    fast.invalidate()
    assert np.array_equal(fast.hop_matrix(), before)
    assert fast.path(0, topo.n_ases - 1) == p_before
