"""Unit tests for ping/traceroute explicit measurement."""

import numpy as np
import pytest

from repro.collection import PING_BYTES, PingService, TracerouteService
from repro.errors import CollectionError


def test_ping_close_to_truth(small_underlay):
    u = small_underlay
    ids = u.host_ids()
    ping = PingService(u, noise_std_ms=1.0, rng=1)
    true_rtt = 2.0 * u.one_way_delay(ids[0], ids[5])
    measured = ping.measure_rtt(ids[0], ids[5], probes=20)
    assert measured == pytest.approx(true_rtt, abs=2.0)


def test_more_probes_reduce_error(small_underlay):
    u = small_underlay
    ids = u.host_ids()
    true_rtt = 2.0 * u.one_way_delay(ids[0], ids[3])
    errs1, errs8 = [], []
    for seed in range(15):
        p = PingService(u, noise_std_ms=5.0, rng=seed)
        errs1.append(abs(p.measure_rtt(ids[0], ids[3], probes=1) - true_rtt))
        p = PingService(u, noise_std_ms=5.0, rng=seed + 100)
        errs8.append(abs(p.measure_rtt(ids[0], ids[3], probes=16) - true_rtt))
    assert np.mean(errs8) < np.mean(errs1)


def test_ping_overhead_proportional_to_probes(small_underlay):
    ping = PingService(small_underlay, rng=1)
    ids = small_underlay.host_ids()
    ping.measure_rtt(ids[0], ids[1], probes=3)
    assert ping.overhead.messages == 6
    assert ping.overhead.bytes_on_wire == 6 * PING_BYTES


def test_measure_matrix_symmetric_zero_diag(small_underlay):
    ping = PingService(small_underlay, rng=2)
    ids = small_underlay.host_ids()[:6]
    mat = ping.measure_matrix(ids)
    assert np.allclose(mat, mat.T)
    assert np.allclose(np.diag(mat), 0.0)
    assert ping.overhead.queries == 15  # C(6,2)


def test_zero_probes_rejected(small_underlay):
    ping = PingService(small_underlay, rng=1)
    ids = small_underlay.host_ids()
    with pytest.raises(CollectionError):
        ping.measure_rtt(ids[0], ids[1], probes=0)


def test_traceroute_follows_as_path(small_underlay):
    u = small_underlay
    tr = TracerouteService(u, rng=3)
    ids = u.host_ids()
    hops = tr.trace(ids[0], ids[7])
    expected_path = u.routing.path(u.asn_of(ids[0]), u.asn_of(ids[7]))
    assert [h.asn for h in hops] == expected_path
    assert hops[0].link_type is None
    for h in hops[1:]:
        assert h.link_type is not None


def test_traceroute_rtts_monotonic_ish(small_underlay):
    tr = TracerouteService(small_underlay, noise_std_ms=0.0, rng=1)
    ids = small_underlay.host_ids()
    hops = tr.trace(ids[0], ids[9])
    rtts = [h.rtt_ms for h in hops]
    assert rtts == sorted(rtts)


def test_as_hop_count(small_underlay):
    u = small_underlay
    tr = TracerouteService(u, rng=1)
    ids = u.host_ids()
    assert tr.as_hop_count(ids[0], ids[4]) == u.as_hops(ids[0], ids[4])
