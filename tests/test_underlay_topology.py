"""Unit tests for the AS topology generator and InternetTopology."""

import networkx as nx
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.underlay import (
    AutonomousSystem,
    InternetTopology,
    LinkType,
    Position,
    Tier,
    TopologyConfig,
    generate_topology,
)


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=5))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TopologyConfig(n_tier1=0)
    with pytest.raises(ConfigurationError):
        TopologyConfig(stub_peering_prob=1.5)
    with pytest.raises(ConfigurationError):
        TopologyConfig(stub_providers=0)


def test_counts_and_numbering(topo):
    cfg = TopologyConfig()
    assert len(topo) == cfg.n_tier1 + cfg.n_tier2 + cfg.n_stub
    for i, asys in enumerate(topo.ases):
        assert asys.asn == i


def test_tier1_full_peering_mesh(topo):
    tier1 = topo.ases_by_tier(Tier.TIER1)
    for a in tier1:
        for b in tier1:
            if a.asn != b.asn:
                assert b.asn in a.peers


def test_every_lower_tier_as_has_provider(topo):
    for asys in topo.ases:
        if asys.tier != Tier.TIER1:
            assert asys.providers, f"AS{asys.asn} has no provider"


def test_graph_connected_and_symmetric(topo):
    assert nx.is_connected(topo.graph)
    for asys in topo.ases:
        for p in asys.providers:
            assert asys.asn in topo.asys(p).customers
        for q in asys.peers:
            assert asys.asn in topo.asys(q).peers


def test_link_type_queries(topo):
    provider, customer = topo.transit_links()[0]
    assert topo.link_type(provider, customer) is LinkType.TRANSIT
    a, b = topo.peering_links()[0]
    assert topo.link_type(a, b) is LinkType.PEERING
    # unconnected pair raises
    stubs = topo.stub_asns()
    for x in stubs:
        for y in stubs:
            if x != y and topo.asys(x).relationship_to(y) is None:
                with pytest.raises(TopologyError):
                    topo.link_type(x, y)
                return


def test_determinism_same_seed():
    a = generate_topology(TopologyConfig(seed=11))
    b = generate_topology(TopologyConfig(seed=11))
    assert [x.peers for x in a.ases] == [x.peers for x in b.ases]
    assert [x.providers for x in a.ases] == [x.providers for x in b.ases]


def test_different_seed_differs():
    a = generate_topology(TopologyConfig(seed=1))
    b = generate_topology(TopologyConfig(seed=2))
    assert (
        [x.peers for x in a.ases] != [x.peers for x in b.ases]
        or [x.providers for x in a.ases] != [x.providers for x in b.ases]
    )


def test_bad_asn_ordering_rejected():
    bad = [
        AutonomousSystem(asn=1, tier=Tier.TIER1, position=Position(0, 0)),
    ]
    with pytest.raises(TopologyError):
        InternetTopology(bad)


def test_asymmetric_relation_rejected():
    a = AutonomousSystem(asn=0, tier=Tier.TIER1, position=Position(0, 0))
    b = AutonomousSystem(asn=1, tier=Tier.STUB, position=Position(1, 1))
    b.providers.add(0)  # but a.customers does not contain 1
    with pytest.raises(TopologyError):
        InternetTopology([a, b])


def test_unknown_asn_lookup(topo):
    with pytest.raises(TopologyError):
        topo.asys(10_000)


def test_stub_regions_are_assigned(topo):
    for asn in topo.stub_asns():
        assert topo.asys(asn).region >= 0


def test_positions_array_shape(topo):
    assert topo.positions_array().shape == (len(topo), 2)
