"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import ChurnConfig
from repro.workloads import (
    CatalogConfig,
    ContentCatalog,
    QueryWorkload,
    availability,
    generate_trace,
    online_at,
)


class TestCatalog:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CatalogConfig(n_files=0)
        with pytest.raises(ConfigurationError):
            CatalogConfig(locality_bias=1.5)
        with pytest.raises(ConfigurationError):
            CatalogConfig(topic_slice=0.0)

    def test_popularity_is_zipf_normalised(self):
        cat = ContentCatalog(CatalogConfig(n_files=50, zipf_exponent=1.0), rng=1)
        assert cat.popularity.sum() == pytest.approx(1.0)
        assert cat.popularity[0] > cat.popularity[-1]

    def test_draw_files_distinct_and_in_range(self):
        cat = ContentCatalog(CatalogConfig(n_files=30), rng=2)
        files = cat.draw_files(asn=5, n=10)
        assert len(files) == 10
        assert len(set(files)) == 10
        assert all(0 <= f < 30 for f in files)

    def test_draw_more_than_catalog_caps(self):
        cat = ContentCatalog(CatalogConfig(n_files=5), rng=3)
        assert len(cat.draw_files(0, 50)) == 5

    def test_locality_bias_concentrates_per_as(self):
        biased = ContentCatalog(
            CatalogConfig(n_files=200, locality_bias=0.9, topic_slice=0.1), rng=4
        )
        uniform = ContentCatalog(
            CatalogConfig(n_files=200, locality_bias=0.0), rng=4
        )

        def slice_hit_rate(cat):
            hits = total = 0
            for asn in range(5):
                slice_files = set(int(f) for f in cat._as_slice(asn))
                for _ in range(30):
                    f = cat.draw_query(asn)
                    hits += f in slice_files
                    total += 1
            return hits / total

        assert slice_hit_rate(biased) > slice_hit_rate(uniform) + 0.3

    def test_assign_shared_content(self, small_underlay):
        cat = ContentCatalog(CatalogConfig(n_files=40), rng=5)
        assignment = cat.assign_shared_content(small_underlay.hosts, files_per_host=6)
        assert len(assignment) == len(small_underlay.hosts)
        assert all(len(v) == 6 for v in assignment.values())

    def test_same_as_hosts_share_slice(self):
        cat = ContentCatalog(
            CatalogConfig(n_files=100, locality_bias=1.0, topic_slice=0.1), rng=6
        )
        a = set(cat.draw_files(3, 8))
        b = set(cat.draw_files(3, 8))
        slice3 = set(int(f) for f in cat._as_slice(3))
        assert a <= slice3 and b <= slice3


class TestQueryWorkload:
    def test_schedule_sorted_and_sized(self, small_underlay):
        cat = ContentCatalog(CatalogConfig(n_files=20), rng=1)
        wl = QueryWorkload(
            small_underlay.hosts, cat, queries_per_host=2,
            duration_ms=1000.0, rng=2,
        )
        events = wl.events()
        assert len(events) == 2 * len(small_underlay.hosts)
        times = [e.at_ms for e in events]
        assert times == sorted(times)
        assert all(0 <= t <= 1000.0 for t in times)

    def test_validation(self, small_underlay):
        cat = ContentCatalog(rng=1)
        with pytest.raises(ConfigurationError):
            QueryWorkload(small_underlay.hosts, cat, queries_per_host=-1)
        with pytest.raises(ConfigurationError):
            QueryWorkload(small_underlay.hosts, cat, duration_ms=0)
        with pytest.raises(ConfigurationError):
            QueryWorkload(small_underlay.hosts, cat, arrival="weibull")

    def test_uniform_default_is_bit_for_bit_stable(self, small_underlay):
        # the arrival parameter must not perturb the historical uniform
        # schedule: replay the exact draw sequence by hand and compare
        cat = ContentCatalog(CatalogConfig(n_files=20), rng=1)
        wl = QueryWorkload(
            small_underlay.hosts, cat, queries_per_host=3,
            duration_ms=1000.0, rng=7,
        )
        events = wl.events()

        ref_cat = ContentCatalog(CatalogConfig(n_files=20), rng=1)
        ref_rng = np.random.default_rng(7)
        expected = []
        for h in small_underlay.hosts:
            for _ in range(3):
                kw = ref_cat.draw_query(h.asn)
                expected.append((h.host_id, kw, float(ref_rng.uniform(0, 1000.0))))
        expected.sort(key=lambda e: e[2])
        assert [(e.origin, e.keyword, e.at_ms) for e in events] == expected

    def test_poisson_mode_draws_exponential_gaps(self, small_underlay):
        cat = ContentCatalog(CatalogConfig(n_files=20), rng=1)
        wl = QueryWorkload(
            small_underlay.hosts, cat, queries_per_host=50,
            duration_ms=10_000.0, arrival="poisson", rng=7,
        )
        events = wl.events()
        assert len(events) == 50 * len(small_underlay.hosts)
        times = [e.at_ms for e in events]
        assert times == sorted(times)
        # an open-loop Poisson schedule has a soft horizon: the expected
        # span matches duration_ms but events may land beyond it
        assert max(times) > 0
        # per-host mean interarrival should be near duration/qph = 200ms
        per_host: dict[int, list[float]] = {}
        for e in events:
            per_host.setdefault(e.origin, []).append(e.at_ms)
        means = [
            np.mean(np.diff(sorted(ts))) for ts in per_host.values()
        ]
        assert 120.0 < float(np.mean(means)) < 280.0


class TestChurnTraces:
    def test_trace_sessions_within_horizon(self):
        trace = generate_trace(
            list(range(10)), ChurnConfig(mean_session=100, mean_offline=50),
            horizon_s=1000.0, rng=1,
        )
        assert trace
        for s in trace:
            assert 0 <= s.start_s < s.end_s <= 1000.0

    def test_online_at(self):
        trace = generate_trace(
            [1, 2, 3], ChurnConfig(mean_session=400, mean_offline=10),
            horizon_s=500.0, rng=2,
        )
        online = online_at(trace, 250.0)
        assert online <= {1, 2, 3}

    def test_availability_fraction(self):
        trace = generate_trace(
            [7], ChurnConfig(mean_session=100, mean_offline=100),
            horizon_s=5000.0, rng=3,
        )
        a = availability(trace, 7, 5000.0)
        assert 0.2 < a < 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_trace([1], ChurnConfig(), horizon_s=0.0)
