"""Unit tests for the experiment plumbing (result container, printing,
multi-seed aggregation)."""

import io

import pytest

from repro.experiments import ExperimentResult, print_table, repeat_over_seeds


def _result(seed: int) -> ExperimentResult:
    res = ExperimentResult("X", "test experiment")
    res.add_row(arm="a", value=float(seed), other=1.0)
    res.add_row(arm="b", value=2.0 * seed, other=2.0)
    return res


class TestExperimentResult:
    def test_add_and_column(self):
        res = _result(1)
        assert res.column("arm") == ["a", "b"]
        assert res.column("value") == [1.0, 2.0]

    def test_row_by(self):
        res = _result(1)
        assert res.row_by("arm", "b")["value"] == 2.0
        with pytest.raises(KeyError):
            res.row_by("arm", "zzz")


class TestPrintTable:
    def test_renders_header_rows_and_notes(self):
        res = _result(3)
        res.notes.append("a note")
        buf = io.StringIO()
        print_table(res, file=buf)
        out = buf.getvalue()
        assert "X: test experiment" in out
        assert "arm" in out and "value" in out
        assert "note: a note" in out
        # one line per row
        assert out.count("\n") >= 6

    def test_empty_result(self):
        buf = io.StringIO()
        print_table(ExperimentResult("E", "empty"), file=buf)
        assert "(no rows)" in buf.getvalue()

    def test_mixed_columns_align(self):
        res = ExperimentResult("M", "mixed")
        res.add_row(a=1)
        res.add_row(b=2.5)
        buf = io.StringIO()
        print_table(res, file=buf)
        out = buf.getvalue()
        assert "a" in out and "b" in out


class TestRepeatOverSeeds:
    def test_mean_and_std(self):
        agg = repeat_over_seeds(
            _result, seeds=[1, 3], key_column="arm", value_columns=["value"]
        )
        rows = {r["arm"]: r for r in agg.rows}
        assert rows["a"]["value_mean"] == pytest.approx(2.0)
        assert rows["a"]["value_std"] == pytest.approx(1.0)
        assert rows["b"]["value_mean"] == pytest.approx(4.0)

    def test_title_mentions_seed_count(self):
        agg = repeat_over_seeds(
            _result, seeds=[1, 2, 3], key_column="arm", value_columns=["value"]
        )
        assert "3 seeds" in agg.title

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            repeat_over_seeds(_result, seeds=[], key_column="arm",
                              value_columns=["value"])


class TestStatsHelpers:
    """The pure-python aggregation helpers behind repeat_over_seeds."""

    def test_mean_matches_numpy(self):
        import numpy as np

        from repro.experiments.stats import mean

        vals = [1.5, 2.25, -3.0, 7.125]
        assert mean(vals) == pytest.approx(float(np.mean(vals)), abs=0)

    def test_pstdev_matches_numpy_ddof0(self):
        import numpy as np

        from repro.experiments.stats import pstdev

        vals = [1.0, 2.0, 4.0, 8.0]
        assert pstdev(vals) == pytest.approx(float(np.std(vals)))

    def test_single_sample_std_is_exactly_zero(self):
        from repro.experiments.stats import mean_std, pstdev

        assert pstdev([3.25]) == 0.0
        m, s = mean_std([3.25])
        assert m == 3.25
        assert s == 0.0  # exactly, not NaN / warning-prone

    def test_zero_spread_std_is_exactly_zero(self):
        from repro.experiments.stats import pstdev

        # fsum keeps this exact even where naive accumulation drifts
        assert pstdev([0.1] * 7) == 0.0

    def test_empty_input_rejected(self):
        from repro.experiments.stats import mean, pstdev

        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            pstdev([])

    def test_single_seed_sweep_reports_zero_std(self):
        agg = repeat_over_seeds(
            _result, seeds=[1], key_column="arm", value_columns=["value"]
        )
        for row in agg.rows:
            assert row["value_std"] == 0.0
