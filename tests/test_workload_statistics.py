"""Statistical sanity of the workload generators."""

import numpy as np
import pytest

from repro.workloads import CatalogConfig, ContentCatalog


def test_zipf_head_drawn_more_than_tail():
    cat = ContentCatalog(
        CatalogConfig(n_files=100, zipf_exponent=1.0, locality_bias=0.0), rng=1
    )
    draws = [cat.draw_query(asn=0) for _ in range(3000)]
    counts = np.bincount(draws, minlength=100)
    head = counts[:10].sum()
    tail = counts[90:].sum()
    assert head > 4 * tail


def test_zero_exponent_is_uniformish():
    cat = ContentCatalog(
        CatalogConfig(n_files=50, zipf_exponent=0.0, locality_bias=0.0), rng=2
    )
    draws = [cat.draw_query(asn=0) for _ in range(5000)]
    counts = np.bincount(draws, minlength=50)
    # no file dominates under a flat distribution
    assert counts.max() < 3.5 * counts.mean()


def test_as_slices_are_deterministic_and_differ():
    cat = ContentCatalog(CatalogConfig(n_files=200, topic_slice=0.1), rng=3)
    s1a = set(int(f) for f in cat._as_slice(1))
    s1b = set(int(f) for f in cat._as_slice(1))
    s2 = set(int(f) for f in cat._as_slice(2))
    assert s1a == s1b
    assert s1a != s2
    assert len(s1a) == 20


def test_locality_bias_one_never_leaves_slice():
    cat = ContentCatalog(
        CatalogConfig(n_files=100, locality_bias=1.0, topic_slice=0.2), rng=4
    )
    slice7 = set(int(f) for f in cat._as_slice(7))
    for _ in range(200):
        assert cat.draw_query(7) in slice7


def test_shared_content_respects_per_host_count(small_underlay):
    cat = ContentCatalog(CatalogConfig(n_files=500), rng=5)
    assignment = cat.assign_shared_content(small_underlay.hosts, files_per_host=9)
    for files in assignment.values():
        assert len(files) == 9
        assert len(set(files)) == 9
