"""Unit tests for LTM topology matching."""

import networkx as nx
import numpy as np
import pytest

from repro.core import ltm_round, mean_neighbor_delay, run_ltm
from repro.errors import ReproError


def _triangle_case():
    """A-B expensive, A-C and C-B cheap: LTM must cut A-B."""
    g = nx.Graph()
    g.add_edges_from([("a", "b"), ("a", "c"), ("c", "b"),
                      ("a", "d"), ("b", "e"), ("c", "f"), ("d", "f"), ("e", "f")])
    delays = {
        frozenset(p): d
        for p, d in {
            ("a", "b"): 100.0, ("a", "c"): 10.0, ("c", "b"): 10.0,
            ("a", "d"): 20.0, ("b", "e"): 20.0, ("c", "f"): 20.0,
            ("d", "f"): 20.0, ("e", "f"): 20.0,
            # non-edges that replacement probing may ask about
            ("a", "e"): 80.0, ("a", "f"): 80.0, ("b", "c"): 10.0,
            ("b", "d"): 80.0, ("b", "f"): 80.0, ("c", "d"): 60.0,
            ("c", "e"): 60.0, ("d", "e"): 60.0,
        }.items()
    }

    def delay_of(x, y):
        return delays[frozenset((x, y))]

    return g, delay_of


def test_low_productive_link_is_cut():
    g, delay_of = _triangle_case()
    cut = ltm_round(g, delay_of, add_replacements=False)
    assert cut >= 1
    assert not g.has_edge("a", "b")
    assert nx.is_connected(g)


def test_min_degree_protects_sparse_nodes():
    g = nx.Graph([("a", "b"), ("a", "c"), ("c", "b")])
    delay_of = lambda x, y: 100.0 if frozenset((x, y)) == frozenset(("a", "b")) else 1.0
    ltm_round(g, delay_of, min_degree=2, add_replacements=False)
    # every node has degree 2: nothing may be cut
    assert g.number_of_edges() == 3


def test_run_ltm_converges_and_reduces_delay(dense_underlay):
    u = dense_underlay
    rng = np.random.default_rng(3)
    ids = u.host_ids()
    g = nx.Graph()
    g.add_nodes_from(ids)
    for h in ids:
        others = [x for x in ids if x != h]
        for i in rng.choice(len(others), size=5, replace=False):
            g.add_edge(h, others[int(i)])

    def delay_of(a, b):
        return u.one_way_delay(a, b)

    before = mean_neighbor_delay(g, delay_of)
    stats = run_ltm(g, delay_of, max_rounds=8)
    after = mean_neighbor_delay(g, delay_of)
    assert stats.links_cut > 0
    assert after < before
    assert nx.is_connected(g)
    assert stats.probes_sent > 0
    # one more round cuts nothing (converged)
    assert ltm_round(g, delay_of) == 0


def test_replacements_add_closer_links(dense_underlay):
    u = dense_underlay
    rng = np.random.default_rng(5)
    ids = u.host_ids()[:40]
    g = nx.Graph()
    g.add_nodes_from(ids)
    for h in ids:
        others = [x for x in ids if x != h]
        for i in rng.choice(len(others), size=4, replace=False):
            g.add_edge(h, others[int(i)])
    stats = run_ltm(g, u.one_way_delay, max_rounds=5, add_replacements=True)
    if stats.links_cut:
        assert stats.links_added >= 0  # replacements only when beneficial


def test_validation():
    g = nx.path_graph(3)
    with pytest.raises(ReproError):
        ltm_round(g, lambda a, b: 1.0, min_degree=0)
    with pytest.raises(ReproError):
        ltm_round(g, lambda a, b: 1.0, slack=1.5)
    with pytest.raises(ReproError):
        run_ltm(g, lambda a, b: 1.0, max_rounds=0)
    with pytest.raises(ReproError):
        mean_neighbor_delay(nx.Graph(), lambda a, b: 1.0)
