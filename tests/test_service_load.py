"""Load drivers: lifecycle, capacity gate, timeouts, reports, metrics.

The drivers are exercised against synthetic ops on a bare simulation —
an op that completes after a fixed service time — so every latency in
the assertions is exact.
"""

import math

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.service import (
    ClosedLoopDriver,
    OpenLoopDriver,
    OpSpec,
    PoissonArrivals,
)
from repro.sim.engine import Simulation


def fixed_service_op(sim, service_ms, *, name="op", ok=True, origins=(0,)):
    """An op that completes ``service_ms`` after being started."""

    def pick_origin(rng):
        return origins[int(rng.integers(len(origins)))]

    def issue(origin, on_done):
        sim.schedule(service_ms, on_done, ok)

    return OpSpec(name, 1.0, pick_origin, issue)


def test_opspec_rejects_nonpositive_weight():
    with pytest.raises(ConfigurationError):
        OpSpec("x", 0.0, lambda rng: 0, lambda o, d: None)


def test_open_loop_issues_every_arrival_and_measures_service_time():
    sim = Simulation()
    driver = OpenLoopDriver(
        sim,
        [fixed_service_op(sim, 40.0)],
        PoissonArrivals(20.0, rng=1),
        duration_ms=10_000.0,
        rng=2,
    )
    report = driver.run(drain_ms=1_000.0)
    assert report.mode == "open"
    assert report.offered == report.issued == report.succeeded
    assert report.offered > 100  # ~200 expected
    assert report.failed == report.timed_out == report.unfinished == 0
    # unconstrained concurrency: latency == service time for every op
    assert report.latency_ms["p50"] == pytest.approx(40.0)
    assert report.latency_ms["p99"] == pytest.approx(40.0)
    assert report.success_rate == 1.0
    assert report.throughput_per_s == pytest.approx(report.offered / 10.0)


def test_capacity_gate_queueing_shows_up_in_latency():
    # one origin, one slot, deterministic 100ms service: at 20/s offered
    # the service saturates at 10/s and queue wait must dominate p99
    sim = Simulation()
    driver = OpenLoopDriver(
        sim,
        [fixed_service_op(sim, 100.0)],
        PoissonArrivals(20.0, rng=3),
        duration_ms=5_000.0,
        timeout_ms=None,
        concurrency_per_origin=1,
        rng=4,
    )
    report = driver.run(drain_ms=60_000.0)
    assert report.succeeded == report.offered
    # with a single slot the server completes one op per 100ms, so the
    # backlog grows linearly: tail latency far above the service time
    assert report.latency_ms["p99"] > 1_000.0
    assert report.latency_ms["p50"] > 100.0


def test_gate_fifo_order_and_slot_handoff():
    sim = Simulation()
    finished = []
    spec = fixed_service_op(sim, 10.0)
    driver = OpenLoopDriver(
        sim, [spec], PoissonArrivals(1.0, rng=1),
        duration_ms=100.0, concurrency_per_origin=1, rng=1,
    )
    # three simultaneous arrivals at t=0 through one slot: strict FIFO
    for _ in range(3):
        driver._launch()
    sim.run()
    driver._sweep_unfinished()
    recs = driver.records
    assert [r.status for r in recs] == ["ok", "ok", "ok"]
    assert [r.started_at for r in recs] == [0.0, 10.0, 20.0]
    assert [r.latency_ms for r in recs] == [10.0, 20.0, 30.0]


def test_timeout_marks_op_and_ignores_late_completion():
    sim = Simulation()
    driver = OpenLoopDriver(
        sim,
        [fixed_service_op(sim, 500.0)],
        PoissonArrivals(5.0, rng=1),
        duration_ms=1_000.0,
        timeout_ms=100.0,
        rng=2,
    )
    report = driver.run(drain_ms=2_000.0)
    assert report.timed_out == report.offered
    assert report.succeeded == 0
    assert math.isnan(report.latency_ms["p50"])
    # late completions (at +500ms, after the +100ms deadline) are ignored
    assert all(r.status == "timeout" for r in driver.records)
    assert all(r.finished_at - r.arrived_at == 100.0 for r in driver.records)


def test_timeout_cascade_through_a_saturated_slot():
    # three simultaneous arrivals, one slot, op that outlives the 50ms
    # deadline: every record times out, the slot hands off cleanly at
    # the deadline timestamp, and late completions change nothing
    sim = Simulation()
    started = []

    def issue(origin, on_done):
        started.append(sim.now)
        sim.schedule(1_000.0, on_done, True)

    spec = OpSpec("slow", 1.0, lambda rng: 0, issue)
    driver = OpenLoopDriver(
        sim, [spec], PoissonArrivals(1.0, rng=1),
        duration_ms=100.0, timeout_ms=50.0, concurrency_per_origin=1, rng=1,
    )
    for _ in range(3):
        driver._launch()
    sim.run()
    driver._sweep_unfinished()
    assert [r.status for r in driver.records] == ["timeout"] * 3
    # the first op held the slot from t=0; the queued two only got it
    # at the t=50 deadline cascade (queue wait is visible in started_at)
    assert started == [0.0, 50.0, 50.0]
    assert all(r.finished_at == 50.0 + r.arrived_at for r in driver.records)
    # gate is fully drained: no leaked slots, no stuck queue entries
    assert driver._gate.queued == 0


def test_unfinished_sweep_counts_still_pending_ops():
    sim = Simulation()
    driver = OpenLoopDriver(
        sim,
        [fixed_service_op(sim, 50_000.0)],  # far beyond the drain window
        PoissonArrivals(5.0, rng=1),
        duration_ms=1_000.0,
        timeout_ms=None,
        rng=2,
    )
    report = driver.run(drain_ms=100.0)
    assert report.unfinished == report.offered
    assert report.succeeded == 0


def test_weighted_mix_roughly_respected():
    sim = Simulation()
    a = fixed_service_op(sim, 10.0, name="a")
    b = fixed_service_op(sim, 10.0, name="b")
    specs = [
        OpSpec("a", 0.2, a.pick_origin, a.issue),
        OpSpec("b", 0.8, b.pick_origin, b.issue),
    ]
    driver = OpenLoopDriver(
        sim, specs, PoissonArrivals(100.0, rng=1),
        duration_ms=20_000.0, rng=2,
    )
    report = driver.run(drain_ms=1_000.0)
    frac_b = report.per_kind["b"]["issued"] / report.issued
    assert frac_b == pytest.approx(0.8, abs=0.05)


def test_closed_loop_self_clocks_and_respects_think_time():
    sim = Simulation()
    driver = ClosedLoopDriver(
        sim,
        [fixed_service_op(sim, 100.0)],
        n_workers=4,
        think_time_ms=100.0,
        duration_ms=10_000.0,
        rng=1,
    )
    report = driver.run(drain_ms=5_000.0)
    assert report.mode == "closed"
    # each worker completes ~1 op per 200ms (service+think): ~50 each
    assert report.succeeded == pytest.approx(200, rel=0.15)
    assert report.latency_ms["p99"] == pytest.approx(100.0)
    assert report.unfinished == 0


def test_closed_loop_synchronous_completion_cannot_spin():
    sim = Simulation()

    def issue(origin, on_done):
        on_done(True)  # completes within the same event

    spec = OpSpec("sync", 1.0, lambda rng: 0, issue)
    driver = ClosedLoopDriver(
        sim, [spec], n_workers=1, think_time_ms=0.0,
        duration_ms=1_000.0, rng=1,
    )
    report = driver.run(drain_ms=100.0)
    # the 1ms floor bounds the op count; an unbounded spin would hang
    assert 500 <= report.succeeded <= 1_001


def test_closed_loop_requires_timeout():
    sim = Simulation()
    with pytest.raises(ConfigurationError):
        ClosedLoopDriver(
            sim, [fixed_service_op(sim, 10.0)], timeout_ms=None, rng=1
        )


def test_driver_metrics_inside_observe():
    with obs.observe() as session:
        sim = Simulation()
        driver = OpenLoopDriver(
            sim,
            [fixed_service_op(sim, 25.0)],
            PoissonArrivals(10.0, rng=1),
            duration_ms=2_000.0,
            rng=2,
        )
        report = driver.run(drain_ms=1_000.0)
    ctr = session.registry.get("service_ops_total")
    assert ctr.value(op="op", status="ok") == report.succeeded
    hist = session.registry.get("service_op_latency_ms")
    assert hist.count(op="op") == report.succeeded
    assert hist.quantile(0.5, op="op") == pytest.approx(25.0, abs=1.0)


def test_report_as_dict_is_json_safe():
    import json

    sim = Simulation()
    driver = OpenLoopDriver(
        sim,
        [fixed_service_op(sim, 50_000.0)],
        PoissonArrivals(5.0, rng=1),
        duration_ms=500.0,
        timeout_ms=None,
        rng=2,
    )
    report = driver.run(drain_ms=10.0)  # all unfinished -> NaN percentiles
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["latency_ms"]["p50"] is None
    assert payload["unfinished"] == report.offered
