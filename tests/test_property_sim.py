"""Property tests: the event engine preserves causal order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulation


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulation()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert fired == sorted(delays)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_chained_scheduling_never_goes_backwards(pairs):
    sim = Simulation()
    observed = []

    def outer(extra):
        observed.append(sim.now)
        sim.schedule(extra, inner)

    def inner():
        observed.append(sim.now)

    for first, second in pairs:
        sim.schedule(first, outer, second)
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == 2 * len(pairs)


@given(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40))
def test_cancellation_removes_exactly_the_cancelled(n_keep, n_cancel):
    sim = Simulation()
    fired = []
    handles = []
    for i in range(n_keep):
        sim.schedule(float(i), fired.append, ("keep", i))
    for i in range(n_cancel):
        handles.append(sim.schedule(float(i) + 0.5, fired.append, ("drop", i)))
    for h in handles:
        h.cancel()
    sim.run()
    assert len(fired) == n_keep
    assert all(tag == "keep" for tag, _i in fired)
