"""Sharded scheduling preserves global event order and trace digests.

The determinism contract of :class:`repro.sim.shard.ShardedScheduler` is
that batching events through per-shard buffers and one ``schedule_many``
is *bit-identical* to scheduling each event serially at defer time:
same sequence numbers, same tie-breaking, same trace digest.  These
tests lock that down, from the scheduler in isolation up to full
fig5/kademlia scenario runs compared under both paths.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.sim import Simulation
from repro.sim.shard import (
    ShardedScheduler,
    configure_sharded_scheduling,
    sharded_scheduling_enabled,
)
from tests.test_golden_traces import _fig5_trace_once, _kademlia_trace


@pytest.fixture()
def serial_default():
    """Run the test with sharded scheduling globally disabled."""
    configure_sharded_scheduling(False)
    try:
        yield
    finally:
        configure_sharded_scheduling(True)


# -- scheduler unit behaviour --------------------------------------------------------
class TestShardedScheduler:
    def test_flush_empty_is_noop(self, sim):
        sched = ShardedScheduler(sim)
        assert sched.flush() == []
        assert sched.flushes == 0

    def test_flush_preserves_arrival_order_across_shards(self, sim):
        """Events interleaved over shards fire exactly as if scheduled
        serially — ties on delay break by arrival stamp, not by shard."""
        fired = []
        sched = ShardedScheduler(sim)
        # all at the same delay: order must be pure arrival order
        for i, shard in enumerate([3, 1, 2, 1, 3, 0, 2, 0]):
            sched.defer(shard, 5.0, fired.append, i)
        assert sched.pending == 8
        assert sched.shard_sizes() == {0: 2, 1: 2, 2: 2, 3: 2}
        handles = sched.flush()
        assert len(handles) == 8
        assert sched.pending == 0 and sched.flushes == 1
        sim.run()
        assert fired == list(range(8))

    def test_flush_matches_serial_schedule(self):
        """Same (shard, delay) stream through a scheduler and through
        plain sim.schedule: identical fire order."""
        stream = [(i % 5, float((i * 7) % 3), i) for i in range(100)]

        def run_serial():
            sim, fired = Simulation(), []
            for _shard, delay, i in stream:
                sim.schedule(delay, fired.append, i)
            sim.run()
            return fired

        def run_sharded():
            sim, fired = Simulation(), []
            sched = ShardedScheduler(sim)
            for shard, delay, i in stream:
                sched.defer(shard, delay, fired.append, i)
            sched.flush()
            sim.run()
            return fired

        assert run_sharded() == run_serial()

    def test_defer_many_equals_repeated_defer(self, sim):
        fired = []
        sched = ShardedScheduler(sim)
        sched.defer_many(0, [(1.0, fired.append, (1,)), (0.5, fired.append, (2,))])
        sched.defer(1, 0.5, fired.append, 3)
        assert sched.deferred == 3
        sched.flush()
        sim.run()
        assert fired == [2, 3, 1]  # delay order, stamp-ordered ties

    def test_shard_of_key_function(self, sim):
        sched = ShardedScheduler(sim, shard_of=lambda region: region % 2)
        for region in range(6):
            sched.defer(region, 1.0, lambda: None)
        assert sched.shard_sizes() == {0: 3, 1: 3}

    def test_handles_are_cancellable(self, sim):
        fired = []
        sched = ShardedScheduler(sim)
        sched.defer(0, 1.0, fired.append, "a")
        sched.defer(1, 1.0, fired.append, "b")
        handles = sched.flush()
        handles[0].cancel()
        sim.run()
        assert fired == ["b"]

    def test_global_toggle(self):
        assert sharded_scheduling_enabled()  # repo default
        configure_sharded_scheduling(False)
        try:
            assert not sharded_scheduling_enabled()
        finally:
            configure_sharded_scheduling(True)


# -- trace-digest equivalence on the scheduler itself --------------------------------
def _digest_of(run) -> tuple[str, int]:
    tracer = obs.Tracer(capacity=64)
    with obs.observe(tracer=tracer):
        run()
    return tracer.digest(), tracer.emitted


def test_scheduler_trace_digest_matches_serial():
    """The digest covers schedule/fire seq numbers — sharded insertion
    must reproduce them exactly."""
    stream = [(i % 7, float((i * 13) % 11), i) for i in range(300)]

    def noop():  # one shared callback: trace events record the qualname
        pass

    def serial():
        sim = Simulation()
        for _shard, delay, _i in stream:
            sim.schedule(delay, noop)
        sim.run()

    def sharded():
        sim = Simulation()
        sched = ShardedScheduler(sim)
        for shard, delay, _i in stream:
            sched.defer(shard, delay, noop)
        sched.flush()
        sim.run()

    digest_serial, emitted_serial = _digest_of(serial)
    digest_sharded, emitted_sharded = _digest_of(sharded)
    assert emitted_serial > 500
    assert emitted_sharded == emitted_serial
    assert digest_sharded == digest_serial


# -- full-scenario equivalence against the golden traces -----------------------------
def test_fig5_digest_identical_serial_vs_sharded(serial_default):
    """A full Gnutella fig5 run (join_all + churn warm-up sharded by AS)
    produces the same golden-trace digest on both paths."""
    digest_serial, emitted_serial = _fig5_trace_once(11, 77)  # serial (fixture)
    configure_sharded_scheduling(True)
    digest_sharded, emitted_sharded = _fig5_trace_once(11, 78)
    assert emitted_serial > 10_000
    assert emitted_sharded == emitted_serial
    assert digest_sharded == digest_serial


def test_kademlia_digest_identical_serial_vs_sharded(serial_default):
    """bootstrap_all sharded by AS reproduces the serial digest."""
    digest_serial, emitted_serial = _kademlia_trace(seed=3)
    configure_sharded_scheduling(True)
    digest_sharded, emitted_sharded = _kademlia_trace(seed=3)
    assert emitted_serial > 1_000
    assert emitted_sharded == emitted_serial
    assert digest_sharded == digest_serial


def test_churn_start_identical_serial_vs_sharded():
    """ChurnProcess.start region-sharded warm-up matches serial."""
    from repro.sim import ChurnConfig, ChurnProcess

    def run(sharded: bool):
        sim, log = Simulation(), []
        churn = ChurnProcess(
            sim,
            [f"p{i}" for i in range(50)],
            ChurnConfig(mean_session=300.0, mean_offline=200.0),
            lambda p: log.append(("j", p, sim.now)),
            lambda p: log.append(("l", p, sim.now)),
            rng=5,
            region_of=lambda p: int(p[1:]) % 4,
        )
        churn.start(warmup=60.0, sharded=sharded)
        sim.run(until=2000.0)
        churn.stop()
        return log

    serial, sharded = run(False), run(True)
    assert len(serial) > 50
    assert sharded == serial
