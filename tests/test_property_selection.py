"""Property tests: every neighbor-selection strategy returns a permutation
of its (deduplicated) input, and composites respect dominance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompositeSelection,
    LatencySelection,
    RandomSelection,
    ResourceSelection,
)

host_lists = st.lists(
    st.integers(min_value=0, max_value=500), min_size=0, max_size=40
)


def _fake_rtt(a, b):
    return float(abs(hash((min(a, b), max(a, b)))) % 1000 + 1)


def _fake_capacity(hid):
    return float(hash(hid) % 777)


@given(host_lists, st.integers(min_value=0, max_value=2**31 - 1))
def test_random_permutation_property(cands, seed):
    out = RandomSelection(rng=seed).rank(0, cands)
    assert sorted(out) == sorted(set(cands))


@given(host_lists)
def test_latency_permutation_and_order(cands):
    out = LatencySelection(_fake_rtt).rank(0, cands)
    assert sorted(out) == sorted(set(cands))
    rtts = [_fake_rtt(0, c) for c in out]
    assert rtts == sorted(rtts)


@given(host_lists)
def test_resource_permutation_and_order(cands):
    out = ResourceSelection(_fake_capacity).rank(0, cands)
    assert sorted(out) == sorted(set(cands))
    caps = [_fake_capacity(c) for c in out]
    assert caps == sorted(caps, reverse=True)


@given(host_lists, st.integers(min_value=0, max_value=100))
def test_select_k_is_prefix_of_rank(cands, k):
    sel = LatencySelection(_fake_rtt)
    ranked = sel.rank(0, cands)
    assert sel.select(0, cands, k) == ranked[:k]


@given(host_lists)
def test_composite_permutation(cands):
    comp = CompositeSelection(
        [
            (LatencySelection(_fake_rtt), 0.6),
            (ResourceSelection(_fake_capacity), 0.4),
        ]
    )
    out = comp.rank(0, cands)
    assert sorted(out) == sorted(set(cands))


@given(host_lists)
def test_composite_with_unanimous_components_matches_them(cands):
    # two copies of the same strategy must reproduce its order
    lat = LatencySelection(_fake_rtt)
    comp = CompositeSelection([(lat, 0.5), (LatencySelection(_fake_rtt), 0.5)])
    assert comp.rank(0, cands) == lat.rank(0, cands)
