"""Unit tests for RNG utilities."""

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(1)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_children_are_independent_and_deterministic():
    kids_a = spawn(ensure_rng(7), 3)
    kids_b = spawn(ensure_rng(7), 3)
    for ka, kb in zip(kids_a, kids_b):
        assert np.allclose(ka.random(4), kb.random(4))
    # different children differ
    vals = [k.random() for k in spawn(ensure_rng(7), 3)]
    assert len(set(vals)) == 3


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        spawn(ensure_rng(0), -1)


def test_spawn_zero_is_empty():
    assert spawn(ensure_rng(0), 0) == []
