"""Unit tests for gMeasure group-based measurement."""

import numpy as np
import pytest

from repro.collection import GroupMeasurement
from repro.errors import CollectionError


@pytest.fixture(scope="module")
def gm(dense_underlay):
    g = GroupMeasurement(dense_underlay, rng=1)
    g.build()
    return g


def test_build_elects_one_rep_per_group(dense_underlay, gm):
    groups = {h.asn for h in dense_underlay.hosts}
    assert set(gm._rep_of_group) == groups
    for g, rep in gm._rep_of_group.items():
        assert dense_underlay.asn_of(rep) == g


def test_estimate_symmetric_and_nonnegative(dense_underlay, gm):
    ids = dense_underlay.host_ids()
    for a, b in zip(ids[:10], ids[10:20]):
        assert gm.estimate(a, b) == gm.estimate(b, a)
        assert gm.estimate(a, b) >= 0.0
    assert gm.estimate(ids[0], ids[0]) == 0.0


def test_calibration_deflates(dense_underlay):
    raw = GroupMeasurement(dense_underlay, calibration_pairs=0, rng=2)
    raw.build()
    cal = GroupMeasurement(dense_underlay, calibration_pairs=20, rng=2)
    cal.build()
    assert raw.beta == 1.0
    assert cal.beta < 1.0  # relay composition overestimates
    assert cal.median_relative_error() < raw.median_relative_error()


def test_accuracy_between_fullmesh_and_nothing(dense_underlay, gm):
    # gMeasure should land well under 50% median error on its own hosts
    assert gm.median_relative_error() < 0.45


def test_probe_cost_subquadratic(dense_underlay, gm):
    n = len(dense_underlay.hosts)
    full_mesh = n * (n - 1) // 2
    assert gm.probe_count() < 0.5 * full_mesh


def test_estimate_before_build_rejected(dense_underlay):
    g = GroupMeasurement(dense_underlay, rng=3)
    ids = dense_underlay.host_ids()
    with pytest.raises(CollectionError):
        g.estimate(ids[0], ids[1])


def test_unknown_host_rejected(gm):
    with pytest.raises(CollectionError):
        gm.estimate(10_000, 10_001)


def test_validation(dense_underlay):
    with pytest.raises(CollectionError):
        GroupMeasurement(dense_underlay, probes=0)
    with pytest.raises(CollectionError):
        GroupMeasurement(dense_underlay, calibration_pairs=-1)
    g = GroupMeasurement(dense_underlay, rng=1)
    with pytest.raises(CollectionError):
        g.build(host_ids=[dense_underlay.host_ids()[0]])


def test_subset_build(dense_underlay):
    ids = dense_underlay.host_ids()[:30]
    g = GroupMeasurement(dense_underlay, rng=4)
    g.build(host_ids=ids)
    assert g.estimate(ids[0], ids[1]) > 0
    with pytest.raises(CollectionError):
        g.estimate(ids[0], dense_underlay.host_ids()[-1])
