"""Unit and integration tests for the BitTorrent swarm."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.overlay.bittorrent import (
    Bitfield,
    SwarmConfig,
    SwarmSimulation,
    Torrent,
    Tracker,
    TrackerPolicy,
)
from repro.underlay import Underlay, UnderlayConfig


class TestTorrentAndBitfield:
    def test_total_bytes(self):
        t = Torrent(0, n_pieces=10, piece_size_bytes=100)
        assert t.total_bytes == 1000

    def test_validation(self):
        with pytest.raises(OverlayError):
            Torrent(0, n_pieces=0)

    def test_bitfield_lifecycle(self):
        bf = Bitfield(4)
        assert not bf.complete and bf.completion == 0.0
        for p in range(4):
            bf.add(p)
        assert bf.complete and bf.completion == 1.0
        assert bf.missing() == set()

    def test_bitfield_bounds(self):
        bf = Bitfield(4)
        with pytest.raises(OverlayError):
            bf.add(4)

    def test_seed_bitfield_complete(self):
        assert Bitfield(8, complete=True).complete


class TestTracker:
    @pytest.fixture(scope="class")
    def underlay(self):
        return Underlay.generate(UnderlayConfig(n_hosts=60, seed=19))

    def test_first_announce_empty(self, underlay):
        tr = Tracker(underlay, rng=1)
        assert tr.announce(underlay.host_ids()[0]) == []

    def test_random_policy_list_size(self, underlay):
        tr = Tracker(underlay, peer_list_size=10, rng=1)
        ids = underlay.host_ids()
        for h in ids[:30]:
            tr.announce(h)
        got = tr.announce(ids[30])
        assert len(got) == 10
        assert ids[30] not in got

    def test_biased_policy_prefers_same_as(self, underlay):
        tr = Tracker(
            underlay, policy=TrackerPolicy.BIASED, peer_list_size=20,
            external_quota=2, rng=2,
        )
        ids = underlay.host_ids()
        for h in ids[:-1]:
            tr.announce(h)
        target = ids[-1]
        got = tr.announce(target)
        my_asn = underlay.asn_of(target)
        external = [p for p in got if underlay.asn_of(p) != my_asn]
        assert len(external) <= 2

    def test_oracle_policy_requires_oracle(self, underlay):
        with pytest.raises(OverlayError):
            Tracker(underlay, policy=TrackerPolicy.ORACLE)

    def test_depart(self, underlay):
        tr = Tracker(underlay, rng=3)
        ids = underlay.host_ids()
        tr.announce(ids[0])
        tr.depart(ids[0])
        assert ids[0] not in tr.swarm

    def test_zero_external_quota_rejected(self, underlay):
        with pytest.raises(OverlayError):
            Tracker(underlay, external_quota=0)

    def _announce_lists(self, underlay, *, rng, policy=TrackerPolicy.RANDOM):
        tr = Tracker(
            underlay, policy=policy, peer_list_size=20, external_quota=4,
            rng=rng,
        )
        ids = underlay.host_ids()
        for h in ids[:-1]:
            tr.announce(h)
        return tr.announce(ids[-1])

    def test_list_order_is_rng_threaded(self, underlay):
        """Same tracker seed -> identical announce list, order included;
        a different seed reorders (and resamples) it.  List order feeds
        straight into neighbor sets, so it must come from the seeded RNG,
        not dict iteration order."""
        for policy in (TrackerPolicy.RANDOM, TrackerPolicy.BIASED):
            a = self._announce_lists(underlay, rng=42, policy=policy)
            b = self._announce_lists(underlay, rng=42, policy=policy)
            c = self._announce_lists(underlay, rng=43, policy=policy)
            assert a == b
            assert a != c

    def test_biased_list_interleaves_same_as_entries(self, underlay):
        """The BIASED policy biases list *composition*, not position:
        same-AS entries must not be clustered at the head of the list
        (the backfill + shuffle would be broken otherwise)."""
        got = self._announce_lists(
            underlay, rng=7, policy=TrackerPolicy.BIASED
        )
        ids = underlay.host_ids()
        my_asn = underlay.asn_of(ids[-1])
        flags = [underlay.asn_of(p) == my_asn for p in got]
        n_internal = sum(flags)
        assert 0 < n_internal < len(flags)
        # internal entries scattered, not a prefix block
        assert flags != sorted(flags, reverse=True)


class TestSwarm:
    def _run(self, policy, seed=22, n=50, cost_aware=False):
        u = Underlay.generate(UnderlayConfig(n_hosts=n, seed=seed))
        torrent = Torrent(0, n_pieces=32)
        tracker = Tracker(u, policy=policy, peer_list_size=20, rng=seed)
        sim = SwarmSimulation(
            u, torrent, tracker,
            config=SwarmConfig(cost_aware=cost_aware), rng=seed + 1,
        )
        ids = u.host_ids()
        sim.populate(leechers=ids[2:], seeds=ids[:2])
        report = sim.run(max_time_s=1500.0, dt=2.0)
        return sim, report

    def test_most_leechers_finish(self):
        _sim, rep = self._run(TrackerPolicy.RANDOM)
        assert rep.completion_rate > 0.85
        assert rep.mean_download_time_s > 0

    def test_completed_peers_have_all_pieces(self):
        sim, _rep = self._run(TrackerPolicy.RANDOM)
        for p in sim.peers.values():
            if p.finish_time is not None:
                assert p.bitfield.complete

    def test_byte_conservation(self):
        sim, rep = self._run(TrackerPolicy.RANDOM)
        uploaded = sum(p.uploaded_bytes for p in sim.peers.values())
        downloaded = sum(p.downloaded_bytes for p in sim.peers.values())
        assert uploaded == pytest.approx(downloaded, rel=1e-9)
        assert rep.total_bytes == pytest.approx(uploaded, rel=1e-9)

    def test_biased_reduces_transit_share(self):
        _s1, random_rep = self._run(TrackerPolicy.RANDOM)
        _s2, biased_rep = self._run(TrackerPolicy.BIASED)
        assert biased_rep.transit_fraction < random_rep.transit_fraction
        assert biased_rep.intra_as_fraction > 2 * random_rep.intra_as_fraction
        # and download times do not collapse (the Bindal claim)
        assert (
            biased_rep.median_download_time_s
            < 2.0 * random_rep.median_download_time_s
        )

    def test_cost_aware_choking_increases_locality(self):
        _s1, plain = self._run(TrackerPolicy.RANDOM, cost_aware=False)
        _s2, cat = self._run(TrackerPolicy.RANDOM, cost_aware=True)
        assert cat.intra_as_fraction >= plain.intra_as_fraction

    def test_duplicate_peer_rejected(self):
        u = Underlay.generate(UnderlayConfig(n_hosts=10, seed=2))
        sim = SwarmSimulation(
            u, Torrent(0, n_pieces=4), Tracker(u, rng=1), rng=1
        )
        sim.add_peer(u.host_ids()[0], is_seed=True)
        with pytest.raises(OverlayError):
            sim.add_peer(u.host_ids()[0])

    def test_paid_transit_charged_to_customers(self):
        sim, rep = self._run(TrackerPolicy.RANDOM)
        if rep.transit_bytes > 0:
            assert sim.paid_transit
            assert sum(sim.paid_transit.values()) >= rep.transit_bytes
