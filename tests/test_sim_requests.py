"""RequestManager: timeouts, capped exponential backoff, retries."""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.sim import RequestManager, RetryPolicy, Simulation


def test_policy_validation():
    with pytest.raises(SimulationError):
        RetryPolicy(timeout_ms=0.0)
    with pytest.raises(SimulationError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(SimulationError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(SimulationError):
        RetryPolicy(timeout_ms=100.0, max_timeout_ms=50.0)


def test_backoff_is_capped():
    policy = RetryPolicy(
        timeout_ms=100.0, backoff_factor=2.0, max_timeout_ms=300.0
    )
    assert [policy.timeout_for_attempt(a) for a in range(4)] == [
        100.0, 200.0, 300.0, 300.0
    ]


def test_resolve_before_timeout_means_no_retry():
    sim = Simulation()
    mgr = RequestManager(sim, policy=RetryPolicy(timeout_ms=100.0))
    sends = []
    mgr.issue("r1", lambda: sends.append(sim.now))
    sim.schedule(50.0, mgr.resolve, "r1")
    sim.run()
    assert sends == [0.0]
    assert mgr.stats.resolved == 1
    assert mgr.stats.retried == mgr.stats.failed == 0
    assert not mgr.is_outstanding("r1")


def test_retries_then_final_failure_with_backoff():
    sim = Simulation()
    mgr = RequestManager(
        sim,
        policy=RetryPolicy(
            timeout_ms=100.0, max_retries=2, backoff_factor=2.0,
            max_timeout_ms=1e6,
        ),
    )
    sends, failures = [], []
    mgr.issue("r1", lambda: sends.append(sim.now),
              on_fail=lambda: failures.append(sim.now))
    sim.run()
    # transmit at 0, retries at 100 and 300, final failure at 700
    assert sends == [0.0, 100.0, 300.0]
    assert failures == [700.0]
    assert mgr.stats.retried == 2 and mgr.stats.failed == 1
    assert not mgr.is_outstanding("r1")


def test_late_reply_to_an_earlier_attempt_resolves():
    sim = Simulation()
    mgr = RequestManager(sim, policy=RetryPolicy(timeout_ms=100.0))
    sends = []
    mgr.issue("r1", lambda: sends.append(sim.now))
    sim.schedule(150.0, mgr.resolve, "r1")  # reply after the first retry
    sim.run()
    assert sends == [0.0, 100.0]
    assert mgr.stats.resolved == 1 and mgr.stats.failed == 0


def test_duplicate_key_rejected_and_resolve_unknown_is_harmless():
    sim = Simulation()
    mgr = RequestManager(sim)
    mgr.issue("r1", lambda: None)
    with pytest.raises(SimulationError):
        mgr.issue("r1", lambda: None)
    assert mgr.resolve("never-issued") is False


def test_transmit_raise_rolls_back_registration():
    # regression: a transmit() that raised used to leave the key
    # registered with no timeout armed — wedged forever, and every
    # re-issue rejected as "already outstanding"
    sim = Simulation()
    mgr = RequestManager(sim, policy=RetryPolicy(timeout_ms=100.0))

    def broken():
        raise OSError("send buffer full")

    with pytest.raises(OSError):
        mgr.issue("r1", broken)
    assert not mgr.is_outstanding("r1")
    assert mgr.outstanding == 0
    assert sim.pending() == 0  # no orphaned timeout armed
    assert mgr.stats.issued == 0

    # the key is reusable: a later healthy issue proceeds normally
    sends = []
    mgr.issue("r1", lambda: sends.append(sim.now))
    sim.schedule(10.0, mgr.resolve, "r1")
    sim.run()
    assert sends == [0.0]
    assert mgr.stats.resolved == 1


def test_request_latency_histogram_inside_observe():
    with obs.observe() as session:
        sim = Simulation()
        mgr = RequestManager(
            sim, policy=RetryPolicy(timeout_ms=1000.0), component="testproto"
        )
        mgr.issue("r1", lambda: None)
        sim.schedule(40.0, mgr.resolve, "r1")
        sim.run()
    hist = session.registry.get("request_latency_ms")
    assert hist.count(component="testproto") == 1
    assert hist.sum(component="testproto") == pytest.approx(40.0)


def test_per_request_policy_override():
    sim = Simulation()
    mgr = RequestManager(
        sim, policy=RetryPolicy(timeout_ms=1e6, max_timeout_ms=1e6)
    )
    failures = []
    mgr.issue(
        "fast", lambda: None, on_fail=lambda: failures.append(sim.now),
        policy=RetryPolicy(timeout_ms=10.0, max_retries=0),
    )
    sim.run(until=100.0)
    assert failures == [10.0]


def test_cancel_all_suppresses_on_fail():
    sim = Simulation()
    mgr = RequestManager(sim, policy=RetryPolicy(timeout_ms=10.0))
    failures = []
    for key in ("a", "b"):
        mgr.issue(key, lambda: None, on_fail=lambda: failures.append(key))
    assert mgr.outstanding == 2
    assert mgr.cancel_all() == 2
    sim.run()
    assert failures == []
    assert mgr.stats.cancelled == 2
    # heap drained: cancelled timeouts do not keep the sim alive
    assert sim.pending() == 0


def test_counters_and_trace_events_inside_observe():
    with obs.observe() as session:
        sim = Simulation()
        mgr = RequestManager(
            sim,
            policy=RetryPolicy(timeout_ms=10.0, max_retries=1),
            component="testproto",
        )
        mgr.issue("r1", lambda: None)
        sim.run()
    retried = session.registry.get("requests_retried_total")
    failed = session.registry.get("requests_failed_total")
    assert retried.value(component="testproto") == 1
    assert failed.value(component="testproto") == 1
    kinds = [e.kind for e in session.tracer if e.component == "request"]
    assert kinds == ["retry", "fail"]
