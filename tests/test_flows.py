"""Property and unit tests for the flow-level max-min allocators.

The progressive-filling allocator (:func:`repro.sim.flows.max_min_rates`)
must satisfy the defining properties of a max-min fair allocation on
every instance: no link over capacity, every flow pinned by a saturated
bottleneck or its own ceiling, and indifference to flow order.  The
closed-form single-link water-filling fast path must agree with
progressive filling exactly on its domain (each flow crossing one
capacitated link plus an optional ceiling).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.flows import max_min_rates, single_link_waterfill

_SAT_RTOL = 1e-9


def _random_instance(rng, n_links, n_flows):
    capacity = rng.uniform(0.5, 100.0, size=n_links)
    rows = [
        rng.choice(n_links, size=rng.integers(1, min(4, n_links) + 1),
                   replace=False)
        for _ in range(n_flows)
    ]
    indptr = np.zeros(n_flows + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=indptr[1:])
    indices = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
    return capacity, indptr, indices


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_max_min_capacity_and_bottleneck(seed):
    rng = np.random.default_rng(seed)
    n_links = int(rng.integers(1, 8))
    n_flows = int(rng.integers(1, 20))
    capacity, indptr, indices = _random_instance(rng, n_links, n_flows)
    rates = max_min_rates(capacity, indptr, indices)

    load = np.bincount(indices, weights=np.repeat(rates, np.diff(indptr)),
                       minlength=n_links)
    # no link above capacity (tolerance for float accumulation)
    assert np.all(load <= capacity * (1 + 1e-6))
    # every flow crosses at least one saturated link (else it could grow:
    # not max-min)
    saturated = load >= capacity * (1 - 1e-6)
    for f in range(n_flows):
        links = indices[indptr[f]:indptr[f + 1]]
        assert saturated[links].any(), (f, rates[f])
    assert np.all(rates > 0)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_max_min_permutation_invariance(seed):
    rng = np.random.default_rng(seed)
    n_links = int(rng.integers(1, 6))
    n_flows = int(rng.integers(2, 15))
    capacity, indptr, indices = _random_instance(rng, n_links, n_flows)
    rates = max_min_rates(capacity, indptr, indices)

    perm = rng.permutation(n_flows)
    rows = [indices[indptr[f]:indptr[f + 1]] for f in perm]
    p_indptr = np.zeros(n_flows + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=p_indptr[1:])
    p_rates = max_min_rates(capacity, p_indptr, np.concatenate(rows))
    np.testing.assert_allclose(p_rates, rates[perm], rtol=1e-9)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_max_min_respects_flow_ceilings(seed):
    rng = np.random.default_rng(seed)
    n_links = int(rng.integers(1, 6))
    n_flows = int(rng.integers(1, 15))
    capacity, indptr, indices = _random_instance(rng, n_links, n_flows)
    flow_cap = rng.uniform(0.1, 50.0, size=n_flows)
    rates = max_min_rates(capacity, indptr, indices, flow_cap)

    assert np.all(rates <= flow_cap * (1 + 1e-9))
    load = np.bincount(indices, weights=np.repeat(rates, np.diff(indptr)),
                       minlength=n_links)
    assert np.all(load <= capacity * (1 + 1e-6))
    # every flow pinned: either by its ceiling or by a saturated link
    saturated = load >= capacity * (1 - 1e-6)
    for f in range(n_flows):
        links = indices[indptr[f]:indptr[f + 1]]
        pinned = rates[f] >= flow_cap[f] * (1 - 1e-6) or saturated[links].any()
        assert pinned, (f, rates[f], flow_cap[f])


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_waterfill_matches_progressive_filling(seed):
    rng = np.random.default_rng(seed)
    n_links = int(rng.integers(1, 8))
    n_flows = int(rng.integers(1, 40))
    capacity = rng.uniform(0.5, 100.0, size=n_links)
    link_of_flow = rng.integers(0, n_links, size=n_flows)
    flow_cap = rng.uniform(0.05, 60.0, size=n_flows)
    # sprinkle uncapped flows (finite link capacity keeps them bounded)
    flow_cap[rng.random(n_flows) < 0.2] = np.inf

    fast = single_link_waterfill(capacity, link_of_flow, flow_cap)

    indptr = np.arange(n_flows + 1, dtype=np.int64)
    rates = max_min_rates(capacity, indptr, link_of_flow, flow_cap)
    np.testing.assert_allclose(fast, rates, rtol=1e-9, atol=1e-12)


class TestAllocatorEdges:
    def test_empty_instance(self):
        rates = max_min_rates(np.zeros(0), np.zeros(1, dtype=np.int64),
                              np.zeros(0, dtype=np.int64))
        assert rates.size == 0
        assert single_link_waterfill(
            np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(0)
        ).size == 0

    def test_single_bottleneck_equal_split(self):
        capacity = np.array([30.0])
        indptr = np.array([0, 1, 2, 3], dtype=np.int64)
        indices = np.zeros(3, dtype=np.int64)
        np.testing.assert_allclose(
            max_min_rates(capacity, indptr, indices), [10.0, 10.0, 10.0]
        )

    def test_waterfill_ceiling_then_share(self):
        # one slow flow pinned at its ceiling, the rest split the leftover
        rates = single_link_waterfill(
            np.array([10.0]),
            np.zeros(3, dtype=np.int64),
            np.array([1.0, np.inf, np.inf]),
        )
        np.testing.assert_allclose(rates, [1.0, 4.5, 4.5])

    def test_unbounded_raises(self):
        with pytest.raises(SimulationError):
            single_link_waterfill(
                np.array([np.inf]),
                np.zeros(1, dtype=np.int64),
                np.array([np.inf]),
            )

    def test_infinite_link_uses_ceiling(self):
        rates = single_link_waterfill(
            np.array([np.inf]),
            np.zeros(2, dtype=np.int64),
            np.array([3.0, 7.0]),
        )
        np.testing.assert_allclose(rates, [3.0, 7.0])
