"""Property tests: hostcache, cost model, bitfield, churn durations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.bittorrent import Bitfield
from repro.overlay.gnutella import HostCache
from repro.sim.churn import draw_duration
from repro.underlay import CostModel, CostParams


@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=100),
    st.integers(min_value=1, max_value=20),
)
def test_hostcache_never_exceeds_capacity_and_keeps_recency(ops, capacity):
    hc = HostCache(capacity=capacity)
    for p in ops:
        hc.add(p)
    assert len(hc) <= capacity
    snap = hc.snapshot()
    assert len(snap) == len(set(snap))
    if ops:
        assert snap[0] == ops[-1]  # most recent first


@given(
    st.floats(min_value=0.1, max_value=1e4),
    st.floats(min_value=0.1, max_value=1e4),
)
def test_transit_cost_monotone_in_traffic(t1, t2):
    model = CostModel(CostParams())
    lo, hi = sorted((t1, t2))
    assert model.transit_monthly_cost(lo) <= model.transit_monthly_cost(hi)


@given(st.floats(min_value=0.1, max_value=1e5))
def test_peering_beats_transit_iff_above_crossover(traffic):
    model = CostModel(CostParams())
    cheaper_peering = model.peering_monthly_cost() < model.transit_monthly_cost(traffic)
    assert cheaper_peering == (traffic > model.crossover_mbps())


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=50)
)
def test_billable_rate_between_min_and_max(samples):
    model = CostModel()
    b = model.billable_mbps(samples)
    assert min(samples) - 1e-9 <= b <= max(samples) + 1e-9


@given(st.sets(st.integers(min_value=0, max_value=63), max_size=64))
def test_bitfield_roundtrip(pieces):
    bf = Bitfield(64)
    for p in pieces:
        bf.add(p)
    assert bf.have() == set(pieces)
    assert bf.missing() == set(range(64)) - set(pieces)
    assert bf.complete == (len(pieces) == 64)


@given(
    st.sampled_from(["exponential", "pareto", "weibull"]),
    st.floats(min_value=0.1, max_value=1e5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_durations_always_nonnegative(family, mean, seed):
    rng = np.random.default_rng(seed)
    assert draw_duration(rng, family, mean) >= 0.0
