"""Failure injection: protocol behaviour under message loss.

The §5.4 robustness question, probed at the transport level: the bus
drops a fraction of messages in flight; redundant protocols (flooding,
α-parallel lookups with timeouts) must degrade gracefully rather than
wedge.
"""

import pytest

from repro.errors import SimulationError
from repro.overlay.gnutella import GnutellaNetwork
from repro.overlay.kademlia import KademliaConfig, KademliaNetwork
from repro.sim import MessageBus, Simulation
from repro.underlay import Underlay, UnderlayConfig


class FixedLatency:
    def one_way_delay(self, src, dst):
        return 1.0


def test_loss_rate_validation(sim):
    with pytest.raises(SimulationError):
        MessageBus(sim, FixedLatency(), loss_rate=1.0)
    with pytest.raises(SimulationError):
        MessageBus(sim, FixedLatency(), loss_rate=-0.1)


def test_loss_rate_set_after_construction_takes_effect(sim):
    """Regression: assigning ``bus.loss_rate`` on a bus built lossless
    used to silently drop nothing (the loss RNG was only created in the
    constructor); the property now provisions it lazily."""
    bus = MessageBus(sim, FixedLatency(), loss_seed=1)
    bus.register("b", lambda m: None)
    bus.loss_rate = 0.4
    n = 1000
    for _ in range(n):
        bus.send("a", "b", "X")
    sim.run()
    assert 0.3 * n < bus.stats.dropped_loss < 0.5 * n
    bus.loss_rate = 0.0  # and back off again
    for _ in range(100):
        bus.send("a", "b", "X")
    dropped_before = bus.stats.dropped_loss
    sim.run()
    assert bus.stats.dropped_loss == dropped_before


def test_loss_rate_property_validates_assignment(sim):
    bus = MessageBus(sim, FixedLatency())
    with pytest.raises(SimulationError):
        bus.loss_rate = 1.0
    with pytest.raises(SimulationError):
        bus.loss_rate = -0.2
    assert bus.loss_rate == 0.0  # rejected assignment left the bus intact


def test_loss_rate_statistics(sim):
    bus = MessageBus(sim, FixedLatency(), loss_rate=0.3, loss_seed=1)
    got = []
    bus.register("b", got.append)
    n = 2000
    for _ in range(n):
        bus.send("a", "b", "X")
    sim.run()
    assert bus.stats.dropped_loss + bus.stats.delivered == n
    assert 0.22 < bus.stats.dropped_loss / n < 0.38
    assert len(got) == bus.stats.delivered


def test_zero_loss_keeps_everything(sim):
    bus = MessageBus(sim, FixedLatency(), loss_rate=0.0)
    bus.register("b", lambda m: None)
    for _ in range(100):
        bus.send("a", "b", "X")
    sim.run()
    assert bus.stats.dropped_loss == 0
    assert bus.stats.delivered == 100


def test_observers_see_lost_messages_too(sim):
    """Lost packets still crossed the wire up to the loss point, so the
    ISP's accounting (and its bill) must include them."""
    seen = []

    class Obs:
        def observe(self, src, dst, size_bytes, kind):
            seen.append(size_bytes)

    bus = MessageBus(sim, FixedLatency(), loss_rate=0.5, loss_seed=2)
    bus.add_observer(Obs())
    bus.register("b", lambda m: None)
    for _ in range(200):
        bus.send("a", "b", "X", size_bytes=10)
    sim.run()
    assert len(seen) == 200
    assert bus.stats.dropped_loss > 0


def test_kademlia_lookup_terminates_under_loss():
    u = Underlay.generate(UnderlayConfig(n_hosts=50, seed=41))
    sim = Simulation()
    bus = MessageBus(sim, u, loss_rate=0.10, loss_seed=3)
    net = KademliaNetwork(
        u, sim, bus, config=KademliaConfig(rpc_timeout_ms=800.0), rng=4
    )
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run(until=120_000)
    stats = net.run_value_workload(15, 60, settle_ms=120_000)
    # lossy but redundant: most lookups still succeed, and every lookup
    # terminated (run_value_workload would report fewer results otherwise)
    assert stats.n == 60
    assert stats.success_rate > 0.7
    assert bus.stats.dropped_loss > 0


def test_gnutella_search_survives_loss():
    u = Underlay.generate(UnderlayConfig(n_hosts=60, seed=42))
    sim = Simulation()
    bus = MessageBus(sim, u, loss_rate=0.10, loss_seed=5)
    net = GnutellaNetwork(u, sim, bus, rng=6)
    net.add_population(u.hosts)
    net.bootstrap(cache_fill=40)
    net.join_all()
    sim.run()
    # flooding redundancy: many queries still find widely shared content
    for leaf in net.leaves()[:20]:
        net.share_content(leaf.host_id, [99])
    sim.run()
    hits = 0
    probes = 10
    for origin in net.leaves()[-probes:]:
        guid = net.search(origin.host_id, 99)
        sim.run()
        if net.searches[guid].hits:
            hits += 1
    assert hits >= 0.7 * probes
