"""Unit tests for CDN (Ono) inference and GPS geolocation."""

import numpy as np
import pytest

from repro.collection import GPSService, SyntheticCDN
from repro.errors import CollectionError


class TestCDN:
    def test_edges_in_distinct_ases(self, dense_underlay):
        cdn = SyntheticCDN(dense_underlay, n_edges=6, rng=1)
        asns = [e.asn for e in cdn.edges]
        assert len(set(asns)) == 6

    def test_ratio_map_is_distribution(self, dense_underlay):
        cdn = SyntheticCDN(dense_underlay, n_edges=6, rng=1)
        rm = cdn.ratio_map(dense_underlay.hosts[0], samples=20)
        assert rm.shape == (6,)
        assert rm.sum() == pytest.approx(1.0)
        assert (rm >= 0).all()

    def test_same_as_peers_have_similar_maps(self, dense_underlay):
        u = dense_underlay
        cdn = SyntheticCDN(u, n_edges=10, rng=2)
        maps = {h.host_id: cdn.ratio_map(h, samples=24) for h in u.hosts[:40]}
        same, diff_region = [], []
        hosts = u.hosts[:40]
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                s = cdn.cosine_similarity(maps[a.host_id], maps[b.host_id])
                ra = u.topology.asys(a.asn).region
                rb = u.topology.asys(b.asn).region
                if a.asn == b.asn:
                    same.append(s)
                elif ra != rb:
                    diff_region.append(s)
        assert np.mean(same) > np.mean(diff_region)

    def test_cosine_similarity_bounds(self):
        assert SyntheticCDN.cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert SyntheticCDN.cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert SyntheticCDN.cosine_similarity([0, 0], [1, 0]) == 0.0

    def test_redirect_returns_valid_edge(self, dense_underlay):
        cdn = SyntheticCDN(dense_underlay, n_edges=4, rng=3)
        e = cdn.redirect(dense_underlay.hosts[0], t=0.0)
        assert 0 <= e < 4

    def test_load_varies_over_time(self, dense_underlay):
        cdn = SyntheticCDN(dense_underlay, n_edges=4, rng=3)
        loads = [cdn.load(0, t) for t in np.linspace(0, 10, 20)]
        assert max(loads) - min(loads) > 0.1

    def test_too_many_edges_rejected(self, dense_underlay):
        with pytest.raises(CollectionError):
            SyntheticCDN(dense_underlay, n_edges=10_000)

    def test_zero_samples_rejected(self, dense_underlay):
        cdn = SyntheticCDN(dense_underlay, n_edges=4, rng=1)
        with pytest.raises(CollectionError):
            cdn.ratio_map(dense_underlay.hosts[0], samples=0)


class TestGPS:
    def test_full_availability_gives_fix_for_all(self, small_underlay):
        gps = GPSService(small_underlay, availability=1.0)
        for hid in small_underlay.host_ids():
            assert gps.position_of(hid) is not None

    def test_zero_availability_gives_none(self, small_underlay):
        gps = GPSService(small_underlay, availability=0.0)
        assert gps.position_of(small_underlay.host_ids()[0]) is None

    def test_error_is_metre_scale(self, small_underlay):
        gps = GPSService(small_underlay, availability=1.0, error_m=10.0)
        errs = []
        for h in small_underlay.hosts:
            p = gps.position_of(h.host_id)
            errs.append(p.distance_to(h.position))
        # 10 m = 0.01 km
        assert np.median(errs) < 0.05

    def test_availability_is_deterministic_per_host(self, small_underlay):
        gps = GPSService(small_underlay, availability=0.5, seed=9)
        ids = small_underlay.host_ids()
        first = [gps.has_fix(h) for h in ids]
        second = [gps.has_fix(h) for h in ids]
        assert first == second
        assert any(first) and not all(first)

    def test_validation(self, small_underlay):
        with pytest.raises(CollectionError):
            GPSService(small_underlay, availability=2.0)
        with pytest.raises(CollectionError):
            GPSService(small_underlay, error_m=-5.0)
