"""Property tests: LTM never disconnects a graph and never increases the
mean neighbour delay."""

import networkx as nx
import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import ltm_round, mean_neighbor_delay, run_ltm


@st.composite
def delay_graphs(draw):
    """A connected random graph plus a symmetric positive delay function."""
    n = draw(st.integers(min_value=4, max_value=14))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    g = nx.random_labeled_tree(n, seed=seed)  # connected backbone
    for _ in range(extra):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            g.add_edge(int(a), int(b))
    delays = {}

    def delay_of(x, y):
        key = frozenset((x, y))
        if key not in delays:
            pair_rng = np.random.default_rng(seed * 131_071 + hash(key) % 65_536)
            delays[key] = float(pair_rng.uniform(1.0, 100.0))
        return delays[key]

    return g, delay_of


@settings(max_examples=40, deadline=None)
@given(delay_graphs(), st.floats(min_value=0.5, max_value=1.0))
def test_ltm_preserves_connectivity(gd, slack):
    g, delay_of = gd
    assume(g.number_of_edges() >= 1)
    run_ltm(g, delay_of, max_rounds=5, slack=slack)
    assert nx.is_connected(g)


@settings(max_examples=40, deadline=None)
@given(delay_graphs())
def test_ltm_without_replacements_only_removes_relayed_links(gd):
    g, delay_of = gd
    assume(g.number_of_edges() >= 1)
    before_edges = set(map(frozenset, g.edges()))
    graph_before = g.copy()
    run_ltm(g, delay_of, max_rounds=5, add_replacements=False)
    after_edges = set(map(frozenset, g.edges()))
    # no additions, and every removed link had a cheaper 2-hop relay in the
    # pre-cut graph (the defining LTM condition)
    assert after_edges <= before_edges
    for removed in before_edges - after_edges:
        a, b = tuple(removed)
        common = set(graph_before.neighbors(a)) & set(graph_before.neighbors(b))
        assert any(
            delay_of(a, c) + delay_of(c, b) < delay_of(a, b) for c in common
        )


@settings(max_examples=30, deadline=None)
@given(delay_graphs())
def test_ltm_round_is_idempotent_at_fixpoint(gd):
    g, delay_of = gd
    assume(g.number_of_edges() >= 1)
    run_ltm(g, delay_of, max_rounds=10, add_replacements=False)
    assert ltm_round(g, delay_of, add_replacements=False) == 0
