"""Frontier-batched query plane vs the per-message reference path.

The equivalence currency is the message-level send log: the sorted
``(time, src, dst, kind, size)`` tuple set of every bus send, hashed by
:func:`flood_trace_digest`.  Both backends must be bit-identical on it —
and on bus stats, ``message_counts()`` (including the drop counters),
per-node counters, search hits, and first-hit latencies — across seeds,
loss rates (serial floods), whole-run fault windows, and TTL edge cases.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverlayError
from repro.faults import DelayFault, FaultInjector, FaultSchedule, LossFault
from repro.overlay.gnutella import (
    GnutellaConfig,
    GnutellaNetwork,
    Query,
    ULTRAPEER,
)
from repro.overlay.kademlia.network import KademliaNetwork
from repro.overlay.kademlia.node import KademliaConfig
from repro.sim import Simulation
from repro.sim.messages import MessageBus
from repro.sim.queryplane import SendLog
from repro.underlay import Underlay, UnderlayConfig

SEEDS = (7, 11, 23)

# one shared (read-only) underlay per population size keeps these tests
# from re-running topology generation for every arm
_UNDERLAYS: dict = {}


def _underlay(n_hosts, seed=13):
    key = (n_hosts, seed)
    if key not in _UNDERLAYS:
        _UNDERLAYS[key] = Underlay.generate(
            UnderlayConfig(n_hosts=n_hosts, seed=seed)
        )
    return _UNDERLAYS[key]


def _build(backend, *, seed, n_hosts=45, loss=0.0, ttl=5, seen_window=4096,
           fault_schedule=None):
    u = _underlay(n_hosts)
    sim = Simulation()
    bus = MessageBus(sim, u, loss_rate=loss, loss_seed=seed)
    log = SendLog(sim)
    bus.add_observer(log)
    net = GnutellaNetwork(
        u, sim, bus,
        config=GnutellaConfig(query_ttl=ttl, seen_window=seen_window),
        rng=seed, query_backend=backend,
    )
    injector = None
    if fault_schedule is not None:
        injector = FaultInjector(sim, bus, fault_schedule, seed=seed)
        injector.start()
    net.add_population(u.hosts)
    net.bootstrap(cache_fill=30)
    net.join_all()
    sim.run()
    for h in u.hosts:
        net.share_content(h.host_id, [h.host_id % 7])
    sim.run()
    return u, sim, bus, net, log


def _fingerprint(u, bus, net, log, guids):
    return {
        "digest": log.digest(),
        "stats": (
            bus.stats.sent, bus.stats.delivered, bus.stats.bytes_sent,
            bus.stats.dropped_loss, bus.stats.dropped_fault,
            bus.stats.dropped_no_handler,
            dict(sorted(bus.stats.by_kind.items())),
        ),
        "message_counts": net.message_counts(),
        "per_node": {
            h.host_id: (
                dict(net.nodes[h.host_id].sent_counts),
                dict(net.nodes[h.host_id].received_counts),
            )
            for h in u.hosts
        },
        "hits": {g: sorted(net.searches[g].hits) for g in guids},
        "first_hit": {
            g: net.searches[g].first_hit_at
            for g in guids
            if not math.isnan(net.searches[g].first_hit_at)
        },
        "now": net.sim.now,
    }


def _run_workload(backend, *, seed, serial=False, **kwargs):
    u, sim, bus, net, log = _build(backend, seed=seed, **kwargs)
    log.clear()
    net.ping_round()
    sim.run()
    guids = []
    for h in u.hosts:
        guids.append(net.search(h.host_id, (h.host_id + 3) % 7))
        if serial:
            sim.run()  # quiesce between floods: loss draws stay aligned
    sim.run()
    return _fingerprint(u, bus, net, log, guids)


@pytest.mark.parametrize("seed", SEEDS)
def test_flood_workload_bit_identical(seed):
    assert _run_workload("reference", seed=seed) == _run_workload(
        "batch", seed=seed
    )


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_serial_floods_bit_identical_under_loss(seed):
    ref = _run_workload("reference", seed=seed, loss=0.12, serial=True)
    bat = _run_workload("batch", seed=seed, loss=0.12, serial=True)
    assert ref == bat
    assert ref["stats"][3] > 0  # losses actually happened


def test_whole_run_fault_window_bit_identical():
    # windows spanning the whole run: the kernel calls the hook at
    # expansion time, which only matters for hooks that change mid-flood
    sched = FaultSchedule((
        DelayFault(start=0.0, end=1e9, extra_ms=25.0),
        LossFault(start=0.0, end=1e9, rate=1.0, src=0, dst=1),
        LossFault(start=0.0, end=1e9, rate=1.0, src=1, dst=0),
    ))
    ref = _run_workload("reference", seed=7, fault_schedule=sched)
    bat = _run_workload("batch", seed=7, fault_schedule=sched)
    assert ref == bat


@pytest.mark.parametrize("ttl", [1, 2])
def test_ttl_edge_cases_bit_identical(ttl):
    ref = _run_workload("reference", seed=11, ttl=ttl)
    bat = _run_workload("batch", seed=11, ttl=ttl)
    assert ref == bat
    if ttl == 1:
        # ttl=1 queries from ultrapeers never leave the origin; every
        # ultrapeer expiry shows up in the drop counter on both paths
        assert bat["message_counts"]["dropped_ttl"] > 0


def test_config_rejects_invalid_ttl_and_windows():
    with pytest.raises(OverlayError):
        GnutellaConfig(query_ttl=0)
    with pytest.raises(OverlayError):
        GnutellaConfig(ping_ttl=0)
    with pytest.raises(OverlayError):
        GnutellaConfig(seen_window=0)
    with pytest.raises(OverlayError):
        GnutellaConfig(route_cache_size=0)


def test_backend_toggle_validation_and_auto_threshold():
    u = _underlay(8)
    sim = Simulation()
    bus = MessageBus(sim, u)
    with pytest.raises(OverlayError):
        GnutellaNetwork(u, sim, bus, query_backend="turbo")
    net = GnutellaNetwork(u, sim, bus, query_backend="auto")
    net.add_population(u.hosts)
    assert not net.query_plane_active()  # tiny population stays reference
    net.query_backend = "batch"
    assert net.query_plane_active()


def test_reflood_suppressed_then_deliverable_after_window_expiry():
    u = _underlay(30)
    sim = Simulation()
    bus = MessageBus(sim, u)
    net = GnutellaNetwork(
        u, sim, bus,
        config=GnutellaConfig(query_ttl=5, seen_window=2),
        rng=5, query_backend="batch",
    )
    net.add_population(u.hosts, ultrapeer_fraction=1.0)
    net.bootstrap(cache_fill=20)
    net.join_all()
    sim.run()
    origin = next(n for n in net.nodes.values() if n.role == ULTRAPEER)

    g1 = net.search(origin.host_id, 3)
    sim.run()
    first = bus.stats.by_kind["QUERY"]
    assert first > 0

    # immediate re-flood of the same GUID: every arrival is a duplicate,
    # so only the origin's own fan-out is sent and nothing propagates
    dup_before = net.drop_counts["duplicate"]
    q = Query(guid=g1, ttl=net.config.query_ttl, keyword=3,
              origin=origin.host_id)
    net.flood_kernel.expand_query(origin, q)
    sim.run()
    refanout = bus.stats.by_kind["QUERY"] - first
    assert refanout == len(origin.neighbors)
    assert net.drop_counts["duplicate"] - dup_before == refanout

    # two fresh floods push g1's key out of the window=2 seen filter ...
    net.search(origin.host_id, 4)
    sim.run()
    net.search(origin.host_id, 5)
    sim.run()
    assert net.seen.expired_keys >= 1 and not net.seen.known(("QUERY", g1))

    # ... after which the expired GUID floods the full mesh again
    before = bus.stats.by_kind["QUERY"]
    net.flood_kernel.expand_query(origin, q)
    sim.run()
    assert bus.stats.by_kind["QUERY"] - before == first


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    ttl=st.integers(min_value=1, max_value=6),
    lossy=st.booleans(),
)
def test_flood_equivalence_property(seed, ttl, lossy):
    loss = 0.08 if lossy else 0.0
    ref = _run_workload(
        "reference", seed=seed, n_hosts=30, ttl=ttl, loss=loss, serial=True
    )
    bat = _run_workload(
        "batch", seed=seed, n_hosts=30, ttl=ttl, loss=loss, serial=True
    )
    assert ref == bat


# ------------------------------------------------------------------ kademlia
def _run_kademlia(batching, *, seed, loss=0.0):
    u = _underlay(40)
    sim = Simulation()
    bus = MessageBus(sim, u, loss_rate=loss, loss_seed=seed)
    log = SendLog(sim)
    bus.add_observer(log)
    net = KademliaNetwork(
        u, sim, bus,
        config=KademliaConfig(round_batching=batching), rng=seed,
    )
    net.add_all_hosts()
    net.bootstrap_all()
    sim.run()
    log.clear()
    stats = net.run_value_workload(10, 20)
    sim.run()
    return {
        "digest": log.digest(),
        "bus": (bus.stats.sent, bus.stats.delivered, bus.stats.dropped_loss,
                dict(sorted(bus.stats.by_kind.items()))),
        "lookups": (stats.n, stats.success_rate, stats.mean_latency_ms,
                    stats.median_latency_ms, stats.mean_rpcs),
    }


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("loss", [0.0, 0.05])
def test_kademlia_round_batching_bit_identical(seed, loss):
    assert _run_kademlia(False, seed=seed, loss=loss) == _run_kademlia(
        True, seed=seed, loss=loss
    )
