"""Tests for Gnutella periodic maintenance."""

import pytest

from repro.overlay.gnutella import GnutellaNetwork
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture()
def net():
    u = Underlay.generate(UnderlayConfig(n_hosts=40, seed=81))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    network = GnutellaNetwork(u, sim, bus, rng=2)
    network.add_population(u.hosts)
    network.bootstrap(cache_fill=20)
    network.join_all()
    sim.run()
    return u, sim, network


def test_auto_maintenance_generates_periodic_pings(net):
    _u, sim, network = net
    before = network.message_counts().get("PING", 0)
    network.start_auto_maintenance(ping_period_ms=10_000.0)
    sim.run(until=sim.now + 65_000)
    network.stop_auto_maintenance()
    after = network.message_counts().get("PING", 0)
    # ~6 rounds from every connected node, each fanning out
    assert after - before > 5 * len(network.nodes)


def test_maintenance_refreshes_hostcaches(net):
    _u, sim, network = net
    # empty one leaf's hostcache; maintenance pongs should repopulate it
    leaf = network.leaves()[0]
    for entry in list(leaf.hostcache.snapshot()):
        leaf.hostcache.remove(entry)
    assert len(leaf.hostcache) == 0
    network.start_auto_maintenance(ping_period_ms=5_000.0)
    sim.run(until=sim.now + 40_000)
    network.stop_auto_maintenance()
    assert len(leaf.hostcache) > 0


def test_stop_auto_maintenance_quiesces(net):
    _u, sim, network = net
    network.start_auto_maintenance(ping_period_ms=5_000.0)
    sim.run(until=sim.now + 12_000)
    network.stop_auto_maintenance()
    sim.run()  # drains in-flight messages and stops — must terminate
    count_a = network.message_counts().get("PING", 0)
    sim.run(until=sim.now + 60_000)
    assert network.message_counts().get("PING", 0) == count_a


def test_offline_nodes_do_not_ping(net):
    _u, sim, network = net
    victim = network.ultrapeers()[0]
    network.part(victim.host_id)
    sim.run()
    sent_before = victim.sent_counts.get("PING", 0)
    network.start_auto_maintenance(ping_period_ms=5_000.0)
    sim.run(until=sim.now + 30_000)
    network.stop_auto_maintenance()
    assert victim.sent_counts.get("PING", 0) == sent_before
