"""Unit tests for planar geometry helpers."""

import numpy as np
import pytest

from repro.underlay.geometry import (
    Position,
    cross_distances,
    pairwise_distances,
    positions_to_array,
    scatter_around,
)


def test_distance_basic():
    assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)
    assert Position(1, 1).distance_to(Position(1, 1)) == 0.0


def test_pairwise_matches_scalar():
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 100, size=(6, 2))
    mat = pairwise_distances(pts)
    for i in range(6):
        for j in range(6):
            d = Position(*pts[i]).distance_to(Position(*pts[j]))
            assert mat[i, j] == pytest.approx(d)
    assert np.allclose(mat, mat.T)
    assert np.allclose(np.diag(mat), 0.0)


def test_pairwise_rejects_bad_shape():
    with pytest.raises(ValueError):
        pairwise_distances(np.zeros((3, 3)))


def test_cross_distances_shape_and_values():
    a = np.array([[0.0, 0.0], [1.0, 0.0]])
    b = np.array([[0.0, 3.0], [0.0, 4.0], [3.0, 4.0]])
    d = cross_distances(a, b)
    assert d.shape == (2, 3)
    assert d[0, 0] == pytest.approx(3.0)
    assert d[0, 2] == pytest.approx(5.0)


def test_positions_to_array_empty():
    assert positions_to_array([]).shape == (0, 2)


def test_scatter_around_centred():
    rng = np.random.default_rng(1)
    pts = scatter_around(Position(100.0, 200.0), 10.0, 500, rng)
    arr = positions_to_array(pts)
    assert abs(arr[:, 0].mean() - 100.0) < 2.0
    assert abs(arr[:, 1].mean() - 200.0) < 2.0


def test_scatter_negative_spread_rejected():
    with pytest.raises(ValueError):
        scatter_around(Position(0, 0), -1.0, 3, np.random.default_rng(0))
