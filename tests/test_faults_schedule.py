"""Fault schedule construction, validation, and spec round-tripping."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    CrashFault,
    DelayFault,
    FaultSchedule,
    LossFault,
    PartitionFault,
)

SPEC = {
    "faults": [
        {"kind": "loss", "start": 10e3, "end": 40e3, "rate": 0.3},
        {"kind": "loss", "start": 0, "end": 60e3, "rate": 1.0,
         "src": 3, "dst": 7, "bidirectional": False},
        {"kind": "delay", "start": 5e3, "end": 9e3, "extra_ms": 80, "asn": 2},
        {"kind": "partition", "start": 20e3, "end": 30e3, "groups": [[1, 2]]},
        {"kind": "crash", "at": 15e3, "peers": [4, 9], "recover_at": 45e3},
    ]
}


def test_window_validation():
    with pytest.raises(FaultError):
        LossFault(start=-1.0, end=10.0, rate=0.5)
    with pytest.raises(FaultError):
        LossFault(start=10.0, end=10.0, rate=0.5)
    with pytest.raises(FaultError):
        DelayFault(start=5.0, end=4.0, extra_ms=10.0)


def test_loss_rate_bounds():
    with pytest.raises(FaultError):
        LossFault(start=0, end=1, rate=0.0)
    with pytest.raises(FaultError):
        LossFault(start=0, end=1, rate=1.5)
    assert LossFault(start=0, end=1, rate=1.0).rate == 1.0


def test_delay_must_be_positive():
    with pytest.raises(FaultError):
        DelayFault(start=0, end=1, extra_ms=0.0)


def test_scope_is_link_or_as_not_both():
    with pytest.raises(FaultError):
        LossFault(start=0, end=1, rate=0.5, src=1)  # dst missing
    with pytest.raises(FaultError):
        LossFault(start=0, end=1, rate=0.5, src=1, dst=2, asn=3)


def test_link_scope_matching_and_direction():
    bidi = LossFault(start=0, end=1, rate=0.5, src=1, dst=2)
    assert bidi.matches(1, 2, None, None)
    assert bidi.matches(2, 1, None, None)
    assert not bidi.matches(1, 3, None, None)
    one_way = LossFault(start=0, end=1, rate=0.5, src=1, dst=2,
                        bidirectional=False)
    assert one_way.matches(1, 2, None, None)
    assert not one_way.matches(2, 1, None, None)


def test_as_scope_matches_either_endpoint():
    f = DelayFault(start=0, end=1, extra_ms=5.0, asn=7)
    assert f.matches(1, 2, 7, 3)
    assert f.matches(1, 2, 3, 7)
    assert not f.matches(1, 2, 3, 4)
    assert f.is_as_scoped


def test_global_scope_matches_everything():
    f = LossFault(start=0, end=1, rate=0.5)
    assert f.matches(1, 2, None, None)


def test_partition_sides_and_separation():
    p = PartitionFault(start=0, end=1, groups=(frozenset({1, 2}),))
    assert p.side_of(1) == p.side_of(2) == 0
    assert p.side_of(9) == -1  # implicit rest-of-the-world side
    assert p.separates(1, 9)
    assert not p.separates(1, 2)
    assert not p.separates(8, 9)


def test_partition_validation():
    with pytest.raises(FaultError):
        PartitionFault(start=0, end=1, groups=())
    with pytest.raises(FaultError):
        PartitionFault(start=0, end=1, groups=(frozenset(),))
    with pytest.raises(FaultError):
        PartitionFault(
            start=0, end=1, groups=(frozenset({1, 2}), frozenset({2, 3}))
        )


def test_crash_validation():
    with pytest.raises(FaultError):
        CrashFault(at=-1.0, peers=(1,))
    with pytest.raises(FaultError):
        CrashFault(at=0.0, peers=())
    with pytest.raises(FaultError):
        CrashFault(at=10.0, peers=(1,), recover_at=10.0)


def test_schedule_rejects_non_faults():
    with pytest.raises(FaultError):
        FaultSchedule(("not a fault",))


def test_schedule_partitions_faults_by_role():
    sched = FaultSchedule.from_dict(SPEC)
    assert len(sched) == 5
    assert len(sched.message_faults) == 4
    assert len(sched.crash_faults) == 1
    assert sched.needs_asn  # AS-scoped delay + partition present
    assert not FaultSchedule(
        (LossFault(start=0, end=1, rate=0.5),)
    ).needs_asn


def test_from_dict_rejects_bad_specs():
    with pytest.raises(FaultError):
        FaultSchedule.from_dict({})
    with pytest.raises(FaultError):
        FaultSchedule.from_dict({"faults": [{"kind": "meteor", "at": 0}]})
    with pytest.raises(FaultError):
        FaultSchedule.from_dict(
            {"faults": [{"kind": "loss", "start": 0, "end": 1, "rate": 0.5,
                         "extra_ms": 3}]}
        )
    with pytest.raises(FaultError):
        FaultSchedule.from_dict({"faults": ["loss"]})


def test_from_json_and_round_trip():
    import json

    sched = FaultSchedule.from_json(json.dumps(SPEC))
    again = FaultSchedule.from_dict(sched.to_dict())
    assert again == sched
    with pytest.raises(FaultError):
        FaultSchedule.from_json("{not json")
