"""Integration tests for the live Vivaldi gossip service."""

import pytest

from repro.collection import VivaldiGossipService
from repro.coords import VivaldiConfig
from repro.errors import CollectionError
from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture(scope="module")
def service():
    u = Underlay.generate(UnderlayConfig(n_hosts=40, seed=28))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    svc = VivaldiGossipService(
        u, sim, bus,
        config=VivaldiConfig(dim=3, use_height=True),
        probe_period_ms=2_000.0,
        rng=5,
    )
    sim.run(until=400_000.0)  # ~200 probes per node
    return u, sim, svc


def test_probes_flow_and_are_accounted(service):
    _u, _sim, svc = service
    assert svc.samples_processed > 1000
    assert svc.overhead.messages >= 2 * svc.samples_processed
    assert svc.overhead.bytes_on_wire > 0


def test_coordinates_converge(service):
    _u, _sim, svc = service
    assert svc.median_relative_error() < 0.25


def test_estimate_close_to_truth_for_typical_pair(service):
    u, _sim, svc = service
    ids = u.host_ids()
    true = 2.0 * u.one_way_delay(ids[0], ids[1])
    est = svc.estimate(ids[0], ids[1])
    assert est == pytest.approx(true, rel=0.8)  # single pair: loose bound


def test_unknown_participant_rejected(service):
    _u, _sim, svc = service
    with pytest.raises(CollectionError):
        svc.estimate(10_000, 10_001)


def test_stop_halts_probing(service):
    _u, sim, svc = service
    svc.stop()
    before = svc.samples_processed
    sim.run(until=sim.now + 60_000.0)
    # replies already in flight may still land; no new probes start
    assert svc.samples_processed <= before + len(svc.participants)


def test_requires_two_participants():
    u = Underlay.generate(UnderlayConfig(n_hosts=5, seed=1))
    sim = Simulation()
    bus, _ = u.message_bus(sim, with_accounting=False)
    with pytest.raises(CollectionError):
        VivaldiGossipService(u, sim, bus, participants=[u.host_ids()[0]])


def test_shares_bus_with_plain_host_endpoints():
    """The ("viv", host) endpoints must not clash with overlay handlers."""
    u = Underlay.generate(UnderlayConfig(n_hosts=10, seed=2))
    sim = Simulation()
    bus, acct = u.message_bus(sim)
    got = []
    ids = u.host_ids()
    bus.register(ids[0], got.append)
    svc = VivaldiGossipService(u, sim, bus, probe_period_ms=1000.0, rng=1)
    bus.send(ids[1], ids[0], "APP", size_bytes=10)
    sim.run(until=20_000.0)
    assert len(got) == 1  # app traffic delivered despite the service
    assert svc.samples_processed > 0
    assert acct.summary.messages > 1  # accounting resolves tuple endpoints
