"""Geolocation × mobility (§6): stale positions degrade location search,
re-joining restores it — the geo overlay's version of the refresh
trade-off."""

import numpy as np
import pytest

from repro.overlay.geo import GlobaseOverlay, Rect
from repro.underlay import Underlay, UnderlayConfig
from repro.underlay.geometry import Position


@pytest.fixture()
def overlay():
    u = Underlay.generate(UnderlayConfig(n_hosts=150, seed=91))
    g = GlobaseOverlay(u, zone_capacity=8)
    g.join_all()
    return u, g


def _move(pos: Position, dx: float, dy: float) -> Position:
    return Position(pos.x + dx, pos.y + dy)


def test_stale_positions_degrade_area_recall(overlay):
    u, g = overlay
    rng = np.random.default_rng(3)
    area = Rect(500.0, 500.0, 3500.0, 3500.0)

    # 40% of the peers move ~600 km but do NOT re-join: the overlay still
    # believes their old position
    movers = list(g.believed)[: int(0.4 * len(g.believed))]
    true_positions = {
        hid: _move(
            u.host(hid).position,
            float(rng.normal(0, 600.0)),
            float(rng.normal(0, 600.0)),
        )
        for hid in movers
    }

    def truly_inside(hid):
        pos = true_positions.get(hid, u.host(hid).position)
        return area.contains(pos)

    truly = {hid for hid in g.believed if truly_inside(hid)}
    found = set(g.peers_in_area(area))
    stale_recall = len(found & truly) / len(truly)
    assert stale_recall < 0.95  # movement broke some answers

    # the §6 remedy: movers re-join at their new position
    for hid in movers:
        g.leave(hid)
        g.tree.insert(hid, true_positions[hid])
        g.believed[hid] = true_positions[hid]
    found2 = set(g.peers_in_area(area))
    fresh_recall = len(found2 & truly) / len(truly)
    assert fresh_recall == 1.0
    assert fresh_recall > stale_recall


def test_rejoin_cost_scales_with_mobility(overlay):
    u, g = overlay
    # each re-join costs tree hops; measure the §6 "additional overhead"
    hops_before = g.stats.join_hops
    joins_before = g.stats.joins
    movers = list(g.believed)[:30]
    for hid in movers:
        g.leave(hid)
        g.join(hid)
    assert g.stats.joins == joins_before + 30
    assert g.stats.join_hops > hops_before
