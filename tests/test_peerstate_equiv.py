"""Equivalence harness: SoA columns vs the retained object references.

Every struct-of-arrays data structure introduced by the scale refactor
keeps its object-based predecessor as a ``_reference`` implementation.
These tests drive both arms with identical operation sequences — random
admit/evict/churn/table/bitmap ops from hypothesis, plus seeded numpy
streams for the overlay structures — and assert the observable state is
identical.  Any divergence is a semantics change the refactor smuggled
in, not an optimisation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peerstate import (
    CRASHED,
    OFFLINE,
    ONLINE,
    PeerState,
    PeerStateReference,
)
from repro.overlay.gnutella.hostcache import HostCache, HostCacheReference
from repro.overlay.kademlia.id_space import ID_BITS
from repro.overlay.kademlia.kbucket import Contact
from repro.overlay.kademlia.routing_table import RoutingTable
from repro.sim import ChurnConfig, ChurnProcess, Simulation

SEEDS = (101, 202, 303)


# -- PeerState vs PeerStateReference -------------------------------------------------
HOSTS = st.integers(min_value=0, max_value=15)
_op = st.one_of(
    st.tuples(st.just("admit"), HOSTS, st.integers(0, 5)),
    st.tuples(st.just("evict"), HOSTS),
    st.tuples(st.just("status"), HOSTS, st.sampled_from([OFFLINE, ONLINE, CRASHED])),
    st.tuples(st.just("tadd"), HOSTS, st.integers(0, 30)),
    st.tuples(st.just("tdel"), HOSTS, st.integers(0, 30)),
    st.tuples(st.just("bset"), HOSTS, st.integers(0, 63)),
    st.tuples(st.just("bclr"), HOSTS, st.integers(0, 63)),
)


def _apply_peerstate_ops(ops):
    """Run one op sequence through both arms, returning them for comparison."""
    soa = PeerState(initial_capacity=2, max_degree=2)
    ref = PeerStateReference()
    table = soa.table("nbrs")
    bitmap = soa.bitmap("bits", 64)
    ref.declare_bitmap("bits", 64)
    for op in ops:
        kind, host = op[0], op[1]
        present = host in soa
        assert present == (host in ref)
        if kind == "admit" and not present:
            soa.admit(host, region=op[2])
            ref.admit(host, region=op[2])
        elif kind == "evict" and present:
            soa.evict(host)
            ref.evict(host)
        elif not present:
            continue
        elif kind == "status":
            soa.set_status_many([host], op[2])
            ref.set_status_many([host], op[2])
        elif kind == "tadd":
            assert table.add(soa.slot_of(host), op[2]) == ref.table_add(
                host, "nbrs", op[2]
            )
        elif kind == "tdel":
            assert table.discard(soa.slot_of(host), op[2]) == ref.table_discard(
                host, "nbrs", op[2]
            )
        elif kind == "bset":
            bitmap.set(soa.slot_of(host), op[2])
            ref.bitmap_set(host, "bits", op[2])
        elif kind == "bclr":
            bitmap.clear(soa.slot_of(host), op[2])
            ref.bitmap_clear(host, "bits", op[2])
    return soa, table, bitmap, ref


def _assert_peerstate_equal(soa, table, bitmap, ref):
    assert sorted(soa.hosts(), key=repr) == sorted(ref.hosts(), key=repr)
    assert len(soa) == len(ref)
    assert soa.online_count() == ref.online_count()
    assert sorted(soa.online_hosts()) == sorted(ref.online_hosts())
    for host in ref.hosts():
        slot = soa.slot_of(host)
        assert soa.status_of(host) == ref.status_of(host)
        assert soa.region_of(host) == ref.region_of(host)
        assert soa.shard_of(host, 3) == ref.shard_of(host, 3)
        assert table.row(slot).tolist() == ref.table_row(host, "nbrs")
        assert table.degree(slot) == ref.table_degree(host, "nbrs")
        assert bitmap.bits(slot) == ref.bitmap_bits(host, "bits")
        assert bitmap.count(slot) == ref.bitmap_count(host, "bits")


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(_op, max_size=120))
def test_peerstate_equivalent_under_random_ops(ops):
    soa, table, bitmap, ref = _apply_peerstate_ops(ops)
    soa.slots.check_invariants()
    _assert_peerstate_equal(soa, table, bitmap, ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_peerstate_equivalent_under_seeded_churn(seed):
    """Long seeded sequence with heavy slot recycling (beyond what
    hypothesis shrinks to) — the free-list stress version."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(2500):
        r = rng.random()
        host = int(rng.integers(40))
        if r < 0.30:
            ops.append(("admit", host, int(rng.integers(6))))
        elif r < 0.50:
            ops.append(("evict", host))
        elif r < 0.65:
            ops.append(("status", host, int(rng.integers(3))))
        elif r < 0.80:
            ops.append(("tadd", host, int(rng.integers(64))))
        elif r < 0.88:
            ops.append(("tdel", host, int(rng.integers(64))))
        elif r < 0.96:
            ops.append(("bset", host, int(rng.integers(64))))
        else:
            ops.append(("bclr", host, int(rng.integers(64))))
    soa, table, bitmap, ref = _apply_peerstate_ops(ops)
    soa.slots.check_invariants()
    assert soa.slots.recycles > 100  # the stress actually recycled slots
    _assert_peerstate_equal(soa, table, bitmap, ref)


# -- RoutingTable: array vs object backend ------------------------------------------
def _random_contacts(rng, n, id_pool):
    for _ in range(n):
        node_id = id_pool[int(rng.integers(len(id_pool)))]
        yield Contact(
            node_id=node_id,
            host_id=node_id % 1000,
            rtt_ms=float(rng.uniform(1.0, 300.0)),
        )


def _assert_tables_equal(arr: RoutingTable, obj: RoutingTable):
    assert arr.size() == obj.size()
    assert arr.nonempty_buckets() == obj.nonempty_buckets()
    for b in obj.nonempty_buckets():
        # bucket-for-bucket, in LRU slot order
        assert arr.buckets[b].contacts() == obj.buckets[b].contacts()
    assert arr.all_contacts() == obj.all_contacts()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("proximity", [False, True])
def test_routing_table_backends_equivalent(seed, proximity):
    rng = np.random.default_rng(seed)

    def rand_id():
        return int.from_bytes(rng.bytes(ID_BITS // 8), "big")

    own_id = rand_id() or 1
    # a mixed pool: single-bit flips of own_id hit every bucket depth,
    # fully random ids concentrate in the far buckets
    id_pool = [own_id ^ (1 << int(b)) for b in rng.integers(0, ID_BITS, size=30)]
    id_pool += [rand_id() for _ in range(30)]
    id_pool = [i for i in id_pool if i != own_id] or [own_id ^ 1]
    arr = RoutingTable(own_id, k=4, proximity=proximity, backend="array")
    obj = RoutingTable(own_id, k=4, proximity=proximity, backend="object")
    for i, contact in enumerate(_random_contacts(rng, 400, id_pool)):
        assert arr.update(contact) == obj.update(contact)
        if i % 10 == 0:
            victim = id_pool[int(rng.integers(len(id_pool)))]
            arr.remove(victim)
            obj.remove(victim)
        if i % 25 == 0:
            target = rand_id()
            assert arr.closest(target, 8) == obj.closest(target, 8)
            probe = id_pool[int(rng.integers(len(id_pool)))]
            assert arr.get(probe) == obj.get(probe)
    _assert_tables_equal(arr, obj)
    target = rand_id()
    assert arr.closest(target) == obj.closest(target)


def test_routing_table_rejects_unknown_backend():
    from repro.errors import OverlayError

    with pytest.raises(OverlayError):
        RoutingTable(1, backend="quantum")


# -- HostCache vs HostCacheReference -------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_hostcache_equivalent_under_seeded_ops(seed):
    rng = np.random.default_rng(seed)
    arr, ref = HostCache(capacity=20), HostCacheReference(capacity=20)
    for _ in range(1500):
        r = rng.random()
        peer = int(rng.integers(60))
        if r < 0.70:
            arr.add(peer)
            ref.add(peer)
        elif r < 0.85:
            arr.remove(peer)
            ref.remove(peer)
        else:
            limit = int(rng.integers(1, 25))
            assert arr.snapshot(limit) == ref.snapshot(limit)
        assert (peer in arr) == (peer in ref)
        assert len(arr) == len(ref)
    assert arr.snapshot() == ref.snapshot()


@pytest.mark.parametrize("seed", SEEDS)
def test_hostcache_fill_random_equivalent(seed):
    arr, ref = HostCache(capacity=30), HostCacheReference(capacity=30)
    population = list(range(200, 300))
    arr.fill_random(population, 25, rng=seed)
    ref.fill_random(population, 25, rng=seed)
    assert arr.snapshot() == ref.snapshot()


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 30)),
        max_size=200,
    )
)
@settings(max_examples=80, deadline=None)
def test_hostcache_equivalent_property(ops):
    arr, ref = HostCache(capacity=8), HostCacheReference(capacity=8)
    for kind, peer in ops:
        getattr(arr, kind)(peer)
        getattr(ref, kind)(peer)
    assert len(arr) == len(ref)
    assert arr.snapshot() == ref.snapshot()
    assert arr.snapshot(3) == ref.snapshot(3)


# -- ChurnProcess: SoA liveness vs reference set ------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_churn_liveness_column_equivalent(seed):
    """Same seed, same peers: the SoA status column and the reference
    Python set agree on the online population at every sampled time."""
    peers = [f"p{i}" for i in range(30)]
    cfg = ChurnConfig(mean_session=600.0, mean_offline=300.0)

    def run(reference: bool):
        sim = Simulation()
        log = []
        churn = ChurnProcess(
            sim, peers, cfg,
            lambda p: log.append(("j", p)),
            lambda p: log.append(("l", p)),
            rng=seed, reference=reference,
        )
        churn.start(warmup=120.0)
        snapshots = []
        for t in (200.0, 1000.0, 3000.0):
            sim.run(until=t)
            snapshots.append((churn.online, churn.joins, churn.leaves))
        churn.stop()
        return log, snapshots

    log_soa, snaps_soa = run(reference=False)
    log_ref, snaps_ref = run(reference=True)
    assert log_soa == log_ref
    assert snaps_soa == snaps_ref
    assert snaps_soa[-1][1] > 0  # the scenario actually churned
