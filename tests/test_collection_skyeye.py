"""Unit tests for the SkyEye information management overlay."""

import numpy as np
import pytest

from repro.collection import SkyEyeOverlay
from repro.errors import CollectionError
from repro.underlay import PeerResources


def _res(up: float, hours: float = 4.0) -> PeerResources:
    return PeerResources(10 * up, up, 1.0, 10.0, 512.0, hours)


def test_tree_structure():
    sky = SkyEyeOverlay(list(range(13)), branching=3)
    assert sky.parent_of(0) is None
    assert sky.parent_of(1) == 0
    assert sky.parent_of(4) == 1
    assert sky.children_of(0) == [1, 2, 3]
    assert sky.children_of(1) == [4, 5, 6]
    assert sky.depth() == 2


def test_depth_logarithmic():
    sky = SkyEyeOverlay(list(range(1000)), branching=4)
    assert sky.depth() <= 5


def test_aggregation_counts_and_means():
    peers = list(range(10))
    sky = SkyEyeOverlay(peers, branching=2)
    for p in peers:
        sky.report(p, _res(up=100.0 * (p + 1)))
    view = sky.run_aggregation_round()
    assert view.count == 10
    expected_mean = 100.0 * np.mean(range(1, 11))
    assert view.mean("bandwidth_up_kbps") == pytest.approx(expected_mean)
    assert view.maxima["bandwidth_up_kbps"] == pytest.approx(1000.0)


def test_top_capacity_identifies_strongest():
    peers = list(range(30))
    sky = SkyEyeOverlay(peers, branching=4, top_k=5)
    for p in peers:
        sky.report(p, _res(up=10.0 * (p + 1)))
    sky.run_aggregation_round()
    assert sky.top_capacity_peers(3) == [29, 28, 27]


def test_partial_reports_aggregate_partially():
    peers = list(range(8))
    sky = SkyEyeOverlay(peers, branching=2)
    for p in peers[:5]:
        sky.report(p, _res(up=100.0))
    view = sky.run_aggregation_round()
    assert view.count == 5


def test_message_overhead_is_n_minus_one_per_round():
    sky = SkyEyeOverlay(list(range(25)), branching=3)
    for p in range(25):
        sky.report(p, _res(100.0))
    sky.run_aggregation_round()
    assert sky.overhead.messages == 24
    sky.run_aggregation_round()
    assert sky.overhead.messages == 48


def test_query_before_aggregation_rejected():
    sky = SkyEyeOverlay([1, 2, 3])
    with pytest.raises(CollectionError):
        _ = sky.root_view


def test_unknown_peer_rejected():
    sky = SkyEyeOverlay([1, 2, 3])
    with pytest.raises(CollectionError):
        sky.report(99, _res(1.0))
    with pytest.raises(CollectionError):
        sky.parent_of(99)


def test_duplicate_peers_rejected():
    with pytest.raises(CollectionError):
        SkyEyeOverlay([1, 1, 2])


def test_unknown_attribute_rejected():
    sky = SkyEyeOverlay([1, 2])
    sky.report(1, _res(10.0))
    sky.run_aggregation_round()
    with pytest.raises(CollectionError):
        sky.mean_resource("nonexistent")


def test_updated_report_replaces_old():
    sky = SkyEyeOverlay([1, 2], branching=2)
    sky.report(1, _res(100.0))
    sky.report(1, _res(500.0))
    sky.report(2, _res(100.0))
    view = sky.run_aggregation_round()
    assert view.maxima["bandwidth_up_kbps"] == pytest.approx(500.0)
    assert view.count == 2
