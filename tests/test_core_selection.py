"""Unit tests for neighbor-selection strategies."""

import pytest

from repro.collection import IPToISPMapping, ISPOracle
from repro.core import (
    CompositeSelection,
    GeoSelection,
    ISPLocalitySelection,
    LatencySelection,
    RandomSelection,
    ResourceSelection,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def env(dense_underlay):
    u = dense_underlay
    ids = u.host_ids()
    return u, ids[0], ids[1:30]


def test_random_is_permutation(env):
    _u, q, cands = env
    sel = RandomSelection(rng=1)
    out = sel.rank(q, cands)
    assert sorted(out) == sorted(cands)


def test_random_deduplicates(env):
    _u, q, cands = env
    sel = RandomSelection(rng=1)
    out = sel.rank(q, list(cands) + list(cands))
    assert sorted(out) == sorted(cands)


def test_isp_selection_with_oracle(env):
    u, q, cands = env
    sel = ISPLocalitySelection(u, oracle=ISPOracle(u))
    out = sel.rank(q, cands)
    hops = [u.routing.hops(u.asn_of(q), u.asn_of(c)) for c in out]
    assert hops == sorted(hops)


def test_isp_selection_with_mapping(env):
    u, q, cands = env
    sel = ISPLocalitySelection(u, mapping=IPToISPMapping(u, accuracy=1.0))
    out = sel.rank(q, cands)
    same = [c for c in cands if u.asn_of(c) == u.asn_of(q)]
    assert out[: len(same)] == [c for c in cands if c in same]


def test_isp_selection_requires_source(env):
    u, _q, _c = env
    with pytest.raises(ConfigurationError):
        ISPLocalitySelection(u)


def test_latency_selection_orders_by_predictor(env):
    u, q, cands = env
    sel = LatencySelection(lambda a, b: 2.0 * u.one_way_delay(a, b))
    out = sel.rank(q, cands)
    rtts = [u.one_way_delay(q, c) for c in out]
    assert rtts == sorted(rtts)


def test_geo_selection_orders_by_distance(env):
    u, q, cands = env
    sel = GeoSelection(lambda hid: u.host(hid).position)
    out = sel.rank(q, cands)
    dists = [u.host(q).position.distance_to(u.host(c).position) for c in out]
    assert dists == sorted(dists)


def test_geo_selection_none_position_ranks_last(env):
    u, q, cands = env
    missing = set(cands[:3])
    sel = GeoSelection(
        lambda hid: None if hid in missing else u.host(hid).position
    )
    out = sel.rank(q, cands)
    assert set(out[-3:]) == missing


def test_resource_selection_orders_by_capacity(env):
    u, q, cands = env
    sel = ResourceSelection(lambda hid: u.host(hid).resources.capacity_score())
    out = sel.rank(q, cands)
    caps = [u.host(c).resources.capacity_score() for c in out]
    assert caps == sorted(caps, reverse=True)


def test_select_top_k(env):
    u, q, cands = env
    sel = ResourceSelection(lambda hid: u.host(hid).resources.capacity_score())
    assert len(sel.select(q, cands, 5)) == 5
    assert sel.select(q, cands, 0) == []
    with pytest.raises(ConfigurationError):
        sel.select(q, cands, -1)


class TestComposite:
    def test_single_component_equals_component(self, env):
        u, q, cands = env
        lat = LatencySelection(lambda a, b: u.one_way_delay(a, b))
        comp = CompositeSelection([(lat, 1.0)])
        assert comp.rank(q, cands) == lat.rank(q, cands)

    def test_weights_shift_outcome(self, env):
        u, q, cands = env
        lat = LatencySelection(lambda a, b: u.one_way_delay(a, b))
        res = ResourceSelection(
            lambda hid: u.host(hid).resources.capacity_score()
        )
        mostly_lat = CompositeSelection([(lat, 0.95), (res, 0.05)])
        mostly_res = CompositeSelection([(lat, 0.05), (res, 0.95)])
        top_lat = mostly_lat.rank(q, cands)[0]
        top_res = mostly_res.rank(q, cands)[0]
        assert top_lat == lat.rank(q, cands)[0]
        assert top_res == res.rank(q, cands)[0]

    def test_is_permutation(self, env):
        u, q, cands = env
        comp = CompositeSelection(
            [
                (RandomSelection(rng=1), 0.5),
                (GeoSelection(lambda hid: u.host(hid).position), 0.5),
            ]
        )
        assert sorted(comp.rank(q, cands)) == sorted(cands)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeSelection([])
        with pytest.raises(ConfigurationError):
            CompositeSelection([(RandomSelection(1), -1.0)])
        with pytest.raises(ConfigurationError):
            CompositeSelection([(RandomSelection(1), 0.0)])
