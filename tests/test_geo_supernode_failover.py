"""Zone supernode failover: when a zone's responsible peer leaves, the
next member takes over (the Globase "routing around dead nodes"
challenge, §2.4)."""

import pytest

from repro.overlay.geo import GlobaseOverlay
from repro.underlay import Underlay, UnderlayConfig


@pytest.fixture()
def overlay():
    u = Underlay.generate(UnderlayConfig(n_hosts=120, seed=97))
    g = GlobaseOverlay(u, zone_capacity=8)
    g.join_all()
    return u, g


def test_supernode_succession(overlay):
    _u, g = overlay
    leaf = next(l for l in g.tree.leaves() if len(l.members) >= 3)
    first = leaf.supernode()
    members = list(leaf.members)
    assert first == members[0]
    g.leave(first)
    assert leaf.supernode() == members[1]
    # queries over the zone still answer
    found, _visited = g.tree.search_area(leaf.rect)
    assert set(found) == set(leaf.members)


def test_zone_drains_to_empty_supernode_none(overlay):
    _u, g = overlay
    leaf = next(l for l in g.tree.leaves() if 1 <= len(l.members) <= 3)
    departed = list(leaf.members)
    for hid in departed:
        g.leave(hid)
    assert leaf.supernode() is None
    found, _ = g.tree.search_area(leaf.rect)
    # no departed peer is ever returned, and every answer is a live member
    assert not set(found) & set(departed)
    assert all(hid in g.believed for hid in found)


def test_query_delay_survives_supernode_loss(overlay):
    u, g = overlay
    from repro.overlay.geo import Rect

    area = Rect(800.0, 800.0, 3200.0, 3200.0)
    origin = u.host_ids()[0]
    d1 = g.query_delay_ms(origin, area)
    # remove a handful of supernodes (their successors take over)
    removed = 0
    for leaf in g.tree.leaves():
        if removed >= 5:
            break
        sn = leaf.supernode()
        if sn is not None and len(leaf.members) >= 2 and sn != origin:
            g.leave(sn)
            removed += 1
    d2 = g.query_delay_ms(origin, area)
    assert d2 > 0  # the query still routes
