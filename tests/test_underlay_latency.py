"""Unit tests for the latency model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.underlay import (
    ASRouting,
    HostFactory,
    LatencyConfig,
    LatencyModel,
    TopologyConfig,
    generate_topology,
)


@pytest.fixture(scope="module")
def setup():
    topo = generate_topology(TopologyConfig(seed=6))
    routing = ASRouting(topo)
    model = LatencyModel(topo, routing, LatencyConfig())
    hosts = HostFactory(topo, rng=2).create_hosts(30)
    return topo, routing, model, hosts


def test_config_validation():
    with pytest.raises(ConfigurationError):
        LatencyConfig(propagation_ms_per_km=0.0)
    with pytest.raises(ConfigurationError):
        LatencyConfig(jitter_std_frac=-0.1)


def test_matrix_properties(setup):
    _t, _r, model, hosts = setup
    mat = model.latency_matrix(hosts)
    n = len(hosts)
    assert mat.shape == (n, n)
    assert np.allclose(np.diag(mat), 0.0)
    assert np.allclose(mat, mat.T)
    off = mat[~np.eye(n, dtype=bool)]
    assert (off > 0).all()
    assert np.isfinite(off).all()


def test_same_as_pairs_faster_on_average(setup):
    _t, _r, model, hosts = setup
    mat = model.latency_matrix(hosts)
    asns = np.array([h.asn for h in hosts])
    same = asns[:, None] == asns[None, :]
    np.fill_diagonal(same, False)
    diff = ~same & ~np.eye(len(hosts), dtype=bool)
    assert mat[same].mean() < mat[diff].mean()


def test_scalar_matches_matrix_without_jitter(setup):
    topo, routing, _m, hosts = setup
    model = LatencyModel(topo, routing, LatencyConfig(jitter_std_frac=0.0))
    mat = model.latency_matrix(hosts)
    for i in (0, 3, 7):
        for j in (1, 5, 9):
            if i == j:
                continue
            assert model.one_way_delay(hosts[i], hosts[j]) == pytest.approx(
                mat[i, j], rel=1e-9
            )


def test_loopback_is_tiny(setup):
    _t, _r, model, hosts = setup
    assert model.one_way_delay(hosts[0], hosts[0]) < 1.0


def test_delay_includes_access_latency(setup):
    _t, _r, model, hosts = setup
    a, b = hosts[0], hosts[1]
    # jittered delay never falls below half the access-latency floor
    assert model.one_way_delay(a, b) >= 0.5 * (
        a.access_latency_ms + b.access_latency_ms
    )


def test_more_as_hops_means_more_base_delay(setup):
    topo, routing, model, _h = setup
    stubs = topo.stub_asns()
    src = stubs[0]
    one_hop = [d for d in range(topo.n_ases) if routing.hops(src, d) == 1]
    three_hop = [d for d in range(topo.n_ases) if routing.hops(src, d) >= 3]
    if one_hop and three_hop:
        near = np.mean([model.as_pair_delay(src, d) for d in one_hop])
        far = np.mean([model.as_pair_delay(src, d) for d in three_hop])
        assert far > near


def test_rtt_is_twice_one_way(setup):
    _t, _r, model, hosts = setup
    assert np.allclose(model.rtt_matrix(hosts), 2.0 * model.latency_matrix(hosts))


def test_empty_host_list(setup):
    _t, _r, model, _h = setup
    assert model.latency_matrix([]).shape == (0, 0)
