"""Shared fixtures.

Session-scoped underlays: generation + all-pairs latency is the expensive
part, and the objects are read-only in the tests that share them.  Tests
that mutate state build their own.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulation
from repro.underlay import Underlay, UnderlayConfig
from repro.underlay.topology import TopologyConfig


@pytest.fixture(scope="session")
def small_underlay() -> Underlay:
    """40 hosts over the default topology — read-only."""
    return Underlay.generate(UnderlayConfig(n_hosts=40, seed=3))


@pytest.fixture(scope="session")
def dense_underlay() -> Underlay:
    """90 hosts over few ASes (dense per-AS population) — read-only."""
    return Underlay.generate(
        UnderlayConfig(
            topology=TopologyConfig(n_tier1=3, n_tier2=6, n_stub=9, n_regions=3),
            n_hosts=90,
            seed=7,
        )
    )


@pytest.fixture()
def sim() -> Simulation:
    return Simulation()
