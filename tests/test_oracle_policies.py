"""Unit tests for the §6 oracle trust policies."""

import pytest

from repro.collection import ISPOracle, OraclePolicy


@pytest.fixture(scope="module")
def env(dense_underlay):
    ids = dense_underlay.host_ids()
    return dense_underlay, ids[0], ids[1:41]


def test_default_policy_is_honest(dense_underlay):
    assert ISPOracle(dense_underlay).policy is OraclePolicy.HONEST


def test_honest_equals_pure_hop_order(env):
    u, q, cands = env
    oracle = ISPOracle(u, policy=OraclePolicy.HONEST)
    ranked = oracle.rank(q, cands)
    hops = [u.routing.hops(u.asn_of(q), u.asn_of(c)) for c in ranked]
    assert hops == sorted(hops)


def test_cooperative_same_hop_order_better_tiebreaks(env):
    u, q, cands = env
    honest = ISPOracle(u, policy=OraclePolicy.HONEST).rank(q, cands)
    coop = ISPOracle(u, policy=OraclePolicy.COOPERATIVE).rank(q, cands)
    # same multiset per hop tier...
    def tiers(ranked):
        out = {}
        for c in ranked:
            out.setdefault(u.routing.hops(u.asn_of(q), u.asn_of(c)), []).append(c)
        return out

    th, tc = tiers(honest), tiers(coop)
    assert {k: sorted(v) for k, v in th.items()} == {
        k: sorted(v) for k, v in tc.items()
    }
    # ...but cooperative orders each tier by descending capacity
    for tier in tc.values():
        caps = [u.host(c).resources.capacity_score() for c in tier]
        assert caps == sorted(caps, reverse=True)


def test_malicious_reverses_hop_order(env):
    u, q, cands = env
    ranked = ISPOracle(u, policy=OraclePolicy.MALICIOUS).rank(q, cands)
    hops = [u.routing.hops(u.asn_of(q), u.asn_of(c)) for c in ranked]
    assert hops == sorted(hops, reverse=True)
    # a same-AS candidate, if present, lands at the tail
    same = [c for c in cands if u.asn_of(c) == u.asn_of(q)]
    if same:
        tail = ranked[-len(same):]
        assert set(same) <= set(tail)


def test_all_policies_return_permutations(env):
    u, q, cands = env
    for policy in OraclePolicy:
        ranked = ISPOracle(u, policy=policy).rank(q, cands)
        assert sorted(ranked) == sorted(cands)
