"""Property tests: message bus invariants, with and without loss."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MessageBus, Simulation


class FixedLatency:
    def __init__(self, delay=1.0):
        self.delay = delay

    def one_way_delay(self, src, dst):
        return self.delay


@given(
    st.lists(st.integers(min_value=0, max_value=9), max_size=60),
    st.floats(min_value=0.0, max_value=0.9),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_conservation_under_loss(payloads, loss, seed):
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(), loss_rate=loss, loss_seed=seed)
    got = []
    bus.register("dst", lambda m: got.append(m.payload))
    for p in payloads:
        bus.send("src", "dst", "K", payload=p)
    sim.run()
    stats = bus.stats
    assert stats.sent == len(payloads)
    assert stats.delivered + stats.dropped_loss + stats.dropped_no_handler == stats.sent
    assert len(got) == stats.delivered
    # delivered payloads are a subsequence of the sent ones (order kept)
    it = iter(payloads)
    assert all(any(p == q for q in it) for p in got)


@given(st.lists(st.integers(min_value=0, max_value=5), max_size=40))
def test_per_pair_fifo_without_loss(payloads):
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency(2.5))
    got = []
    bus.register("d", lambda m: got.append(m.payload))
    for p in payloads:
        bus.send("s", "d", "K", payload=p)
    sim.run()
    assert got == payloads


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
        max_size=50,
    )
)
def test_byte_accounting_matches_sends(msgs):
    sim = Simulation()
    bus = MessageBus(sim, FixedLatency())
    for dst, size in msgs:
        bus.send("src", dst, "K", size_bytes=size)
    sim.run()
    assert bus.stats.bytes_sent == sum(size for _d, size in msgs)
    assert bus.stats.by_kind.get("K", 0) == len(msgs)
